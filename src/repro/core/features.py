"""Feature encoding and the wire messages of the three topics.

Topic names follow the paper exactly: ``IN-DATA`` carries vehicle
telemetry, ``OUT-DATA`` carries abnormal-driving warnings, ``CO-DATA``
carries the prediction summaries RSUs exchange at handover.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.schema import AnomalyKind, TelemetryRecord
from repro.geo.roadnet import RoadType

IN_DATA = "IN-DATA"
OUT_DATA = "OUT-DATA"
CO_DATA = "CO-DATA"

#: Stable numeric code per road type, for the centralized model's
#: RoadType feature.
ROAD_TYPE_CODE: Dict[RoadType, int] = {
    road_type: index for index, road_type in enumerate(RoadType)
}

#: Wire-value -> enum member lookup tables, so the per-record decode
#: path avoids the enum constructor's value scan.
_ROAD_TYPE_BY_VALUE: Dict[Any, RoadType] = {t.value: t for t in RoadType}
_ANOMALY_KIND_BY_VALUE: Dict[Any, AnomalyKind] = {k.value: k for k in AnomalyKind}


@lru_cache(maxsize=None)
def road_hour_context(road_type: RoadType, hour: int) -> Tuple[float, float]:
    """``(hour, road_type_code)`` feature context for one record.

    There are only ``len(RoadType) * 24`` distinct contexts, so the
    scalar fallback path memoizes them instead of recomputing the enum
    lookup and float conversions per record.
    """
    return (float(hour), float(ROAD_TYPE_CODE[road_type]))


def _feature_columns(records) -> tuple:
    """(speed, accel, hour, road_type_code) columns from either a
    :class:`~repro.core.block.TelemetryBlock` or a record sequence.

    This is the single source of the feature formulas: both the
    columnar hot path and the legacy record-list path flow through it,
    so they cannot drift apart.
    """
    from repro.core.block import TelemetryBlock

    if isinstance(records, TelemetryBlock):
        return (
            records.speed_kmh,
            records.accel_ms2,
            records.hour.astype(np.float64),
            records.road_type_code.astype(np.float64),
        )
    contexts = [road_hour_context(r.road_type, r.hour) for r in records]
    return (
        np.array([r.speed_kmh for r in records]),
        np.array([r.accel_ms2 for r in records]),
        np.array([hour for hour, _ in contexts]),
        np.array([code for _, code in contexts]),
    )


def base_features(records) -> np.ndarray:
    """[InstSpeed, accel, Hour] matrix — the per-road feature set.

    Accepts a record sequence or a
    :class:`~repro.core.block.TelemetryBlock` (columnar, no per-record
    work).
    """
    speed, accel, hour, _ = _feature_columns(records)
    if speed.size == 0:
        return np.empty((0, 3))
    return np.column_stack([speed, accel, hour])


def centralized_features(records, encoding: str = "ordinal") -> np.ndarray:
    """[InstSpeed, accel, Hour, RoadType...] — the city-scale set.

    Accepts a record sequence or a
    :class:`~repro.core.block.TelemetryBlock`.  ``encoding`` controls
    the RoadType column(s): ``"ordinal"`` (one integer code, the
    default) or ``"onehot"`` (one indicator per road type).  Both lose
    to the per-road models — the centralized gap is structural (shared
    per-class Gaussians straddle the road types' speed modes), not an
    encoding artefact; the detector tests pin this.
    """
    speed, accel, hour, code = _feature_columns(records)
    if encoding == "ordinal":
        if speed.size == 0:
            return np.empty((0, 4))
        return np.column_stack([speed, accel, hour, code])
    if encoding == "onehot":
        types = list(RoadType)
        if speed.size == 0:
            return np.empty((0, 3 + len(types)))
        indicators = (
            code[:, None] == np.arange(len(types), dtype=np.float64)
        ).astype(np.float64)
        return np.column_stack([speed, accel, hour, indicators])
    raise ValueError(f"unknown encoding: {encoding!r}")


def labels_of(records) -> np.ndarray:
    """Label vector; raises if any record is unlabelled.

    Accepts a record sequence or a
    :class:`~repro.core.block.TelemetryBlock` (whose unlabelled
    sentinel is -1).
    """
    from repro.core.block import NO_LABEL, TelemetryBlock

    if isinstance(records, TelemetryBlock):
        labels = records.label.astype(np.int64)
        missing = np.nonzero(labels == NO_LABEL)[0]
        if missing.size:
            first = int(missing[0])
            raise ValueError(
                f"record for car {int(records.car_id[first])} at "
                f"t={float(records.timestamp[first])} has no label; "
                f"run the Preprocessor first"
            )
        return labels
    labels = []
    for record in records:
        if record.label is None:
            raise ValueError(
                f"record for car {record.car_id} at t={record.timestamp} "
                f"has no label; run the Preprocessor first"
            )
        labels.append(record.label)
    return np.array(labels)


# ----------------------------------------------------------------------
# Wire messages
# ----------------------------------------------------------------------
def record_to_payload(record: TelemetryRecord) -> Dict[str, Any]:
    """Serialize a telemetry record for ``IN-DATA``.

    The resulting compact JSON is ~200 bytes, matching the paper's
    packet-size assumption.
    """
    return {
        "car": record.car_id,
        "rd": record.road_id,
        "acc": round(record.accel_ms2, 3),
        "spd": round(record.speed_kmh, 2),
        "hr": record.hour,
        "day": record.day,
        "rt": record.road_type.value,
        "vr": round(record.road_mean_speed_kmh, 2),
        "ts": round(record.timestamp, 3),
        "ak": record.anomaly_kind.value,
        "lbl": record.label,
    }


def payload_to_record(payload: Dict[str, Any]) -> TelemetryRecord:
    """Inverse of :func:`record_to_payload`."""
    rt = payload["rt"]
    ak = payload.get("ak", "none")
    return TelemetryRecord(
        car_id=int(payload["car"]),
        road_id=int(payload["rd"]),
        accel_ms2=float(payload["acc"]),
        speed_kmh=float(payload["spd"]),
        hour=int(payload["hr"]),
        day=int(payload["day"]),
        road_type=_ROAD_TYPE_BY_VALUE.get(rt) or RoadType(rt),
        road_mean_speed_kmh=float(payload["vr"]),
        timestamp=float(payload["ts"]),
        anomaly_kind=_ANOMALY_KIND_BY_VALUE.get(ak) or AnomalyKind(ak),
        label=payload.get("lbl"),
    )


@dataclass(frozen=True)
class PredictionSummary:
    """The ``CO-DATA`` payload: one vehicle's detection history.

    ``mean_normal_prob`` is the average of the upstream RSU's Naive
    Bayes normal-class probabilities along the previous road — the
    P_prevs-bar of Eq. 1.
    """

    car_id: int
    mean_normal_prob: float
    n_predictions: int
    last_class: int
    from_road_id: int
    timestamp: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_normal_prob <= 1.0:
            raise ValueError(
                f"mean_normal_prob must be in [0, 1]: {self.mean_normal_prob}"
            )
        if self.n_predictions < 1:
            raise ValueError("a summary needs at least one prediction")

    def to_payload(self) -> Dict[str, Any]:
        return {
            "car": self.car_id,
            "p": round(self.mean_normal_prob, 6),
            "n": self.n_predictions,
            "cls": self.last_class,
            "rd": self.from_road_id,
            "ts": round(self.timestamp, 3),
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "PredictionSummary":
        return PredictionSummary(
            car_id=int(payload["car"]),
            mean_normal_prob=float(payload["p"]),
            n_predictions=int(payload["n"]),
            last_class=int(payload["cls"]),
            from_road_id=int(payload["rd"]),
            timestamp=float(payload["ts"]),
        )

    @staticmethod
    def merge(
        summaries: Sequence["PredictionSummary"],
    ) -> Optional["PredictionSummary"]:
        """Combine summaries for one car (multiple upstream roads)."""
        if not summaries:
            return None
        cars = {s.car_id for s in summaries}
        if len(cars) != 1:
            raise ValueError(f"cannot merge summaries of different cars: {cars}")
        total = sum(s.n_predictions for s in summaries)
        weighted = sum(s.mean_normal_prob * s.n_predictions for s in summaries)
        latest = max(summaries, key=lambda s: s.timestamp)
        return PredictionSummary(
            car_id=latest.car_id,
            mean_normal_prob=weighted / total,
            n_predictions=total,
            last_class=latest.last_class,
            from_road_id=latest.from_road_id,
            timestamp=latest.timestamp,
        )


@dataclass(frozen=True)
class WarningMessage:
    """The ``OUT-DATA`` payload: an abnormal-driving warning."""

    car_id: int
    road_id: int
    detected_at: float
    speed_kmh: float
    kind: str = "aggressive_driving"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "car": self.car_id,
            "rd": self.road_id,
            "t": round(self.detected_at, 6),
            "spd": round(self.speed_kmh, 2),
            "kind": self.kind,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "WarningMessage":
        return WarningMessage(
            car_id=int(payload["car"]),
            road_id=int(payload["rd"]),
            detected_at=float(payload["t"]),
            speed_kmh=float(payload["spd"]),
            kind=str(payload.get("kind", "aggressive_driving")),
        )
