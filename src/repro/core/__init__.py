"""CAD3 core: the paper's contribution.

- :mod:`repro.core.features` — feature encoding and the message types
  crossing the three topics (``IN-DATA`` telemetry, ``OUT-DATA``
  warnings, ``CO-DATA`` prediction summaries).
- :mod:`repro.core.detector` — AD3, the standalone per-road-type Naive
  Bayes detector (Sec. IV-C).
- :mod:`repro.core.collaborative` — CAD3, the Eq. 1 fusion plus
  Decision Tree collaborative detector (Sec. IV-D).
- :mod:`repro.core.centralized` — the centralized baseline.
- :mod:`repro.core.accidents` — the Nilsson-formula potential-accident
  estimator (Sec. IV-E).
- :mod:`repro.core.rsu` / :mod:`repro.core.vehicle` /
  :mod:`repro.core.system` — the runnable testbed: RSU nodes with
  broker + micro-batch pipeline + detection + collaboration, vehicle
  processes, and scenario assembly.
"""

from repro.core.accidents import (
    AccidentEstimate,
    expected_accidents,
    nilsson_accident_ratio,
    speed_deviation_delta,
)
from repro.core.block import DetectionEventLog, TelemetryBlock
from repro.core.centralized import CentralizedDetector
from repro.core.collaborative import CollaborativeDetector, NEUTRAL_PRIOR
from repro.core.detector import AD3Detector, road_features
from repro.core.features import (
    CO_DATA,
    IN_DATA,
    OUT_DATA,
    PredictionSummary,
    WarningMessage,
    record_to_payload,
    payload_to_record,
)
from repro.core.online import OnlineAD3Detector, OnlineLabeler, RollingProfile
from repro.core.rsu import RsuConfig, RsuNode
from repro.core.scenario import (
    ScenarioBuilder,
    ScenarioSpec,
    paper_city,
    paper_corridor,
    paper_single_rsu,
)
from repro.core.system import (
    ResilienceStats,
    ScenarioResult,
    TestbedScenario,
)
from repro.core.vehicle import VehicleNode, VehicleStats
from repro.core.workload import (
    ChainWorkload,
    CityWorkload,
    CorridorWorkload,
    SingleRsuCloudWorkload,
    SingleRsuWorkload,
    Workload,
)
from repro.core.wire import (
    SERDE_PROFILES,
    TelemetryStructSerde,
    decode_telemetry_block,
    summary_struct_serde,
    topic_serdes,
    warning_struct_serde,
)

__all__ = [
    "AD3Detector",
    "AccidentEstimate",
    "CO_DATA",
    "CentralizedDetector",
    "CollaborativeDetector",
    "DetectionEventLog",
    "IN_DATA",
    "NEUTRAL_PRIOR",
    "OUT_DATA",
    "SERDE_PROFILES",
    "TelemetryBlock",
    "TelemetryStructSerde",
    "OnlineAD3Detector",
    "OnlineLabeler",
    "PredictionSummary",
    "RollingProfile",
    "ResilienceStats",
    "RsuConfig",
    "RsuNode",
    "ChainWorkload",
    "CityWorkload",
    "CorridorWorkload",
    "ScenarioBuilder",
    "ScenarioResult",
    "ScenarioSpec",
    "SingleRsuCloudWorkload",
    "SingleRsuWorkload",
    "TestbedScenario",
    "Workload",
    "paper_city",
    "paper_corridor",
    "paper_single_rsu",
    "VehicleNode",
    "VehicleStats",
    "WarningMessage",
    "decode_telemetry_block",
    "expected_accidents",
    "nilsson_accident_ratio",
    "payload_to_record",
    "record_to_payload",
    "road_features",
    "speed_deviation_delta",
    "summary_struct_serde",
    "topic_serdes",
    "warning_struct_serde",
]
