"""Shortest-path routing over the road graph.

Trips at the mesoscopic level traverse several road segments ("over a
vehicle trip on multiple roads"); the router turns a (source,
destination) segment pair into the segment sequence a vehicle follows,
so the generator and scenarios can build realistic multi-hop trips on
connected networks (e.g. the grid city).

Dijkstra over the segment-adjacency graph, edge weight = the mean of
the two segments' lengths (the expected travel contribution of
crossing from one to the other).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.geo.roadnet import RoadNetwork


class RouteNotFound(ValueError):
    """No path exists between the requested segments."""


class Router:
    """Dijkstra shortest paths over a :class:`RoadNetwork`."""

    def __init__(self, network: RoadNetwork) -> None:
        self.network = network

    def _edge_weight(self, from_id: int, to_id: int) -> float:
        a = self.network.segment(from_id).length_m
        b = self.network.segment(to_id).length_m
        return (a + b) / 2.0

    def route(self, source: int, destination: int) -> List[int]:
        """The segment-id sequence from ``source`` to ``destination``.

        Both endpoints are included.  Raises :class:`RouteNotFound`
        when the graph does not connect them.
        """
        if source not in self.network or destination not in self.network:
            missing = source if source not in self.network else destination
            raise KeyError(f"unknown segment id {missing}")
        if source == destination:
            return [source]
        distances: Dict[int, float] = {source: 0.0}
        previous: Dict[int, int] = {}
        heap: List[tuple] = [(0.0, source)]
        visited = set()
        while heap:
            distance, current = heapq.heappop(heap)
            if current in visited:
                continue
            if current == destination:
                break
            visited.add(current)
            for neighbor in self.network.neighbors(current):
                if neighbor in visited:
                    continue
                candidate = distance + self._edge_weight(current, neighbor)
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    previous[neighbor] = current
                    heapq.heappush(heap, (candidate, neighbor))
        if destination not in previous and destination != source:
            raise RouteNotFound(
                f"no route from segment {source} to {destination}"
            )
        path = [destination]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path

    def route_length_m(self, path: List[int]) -> float:
        """Total length of the segments along ``path``."""
        return sum(self.network.segment(sid).length_m for sid in path)

    def reachable_from(self, source: int) -> List[int]:
        """All segment ids reachable from ``source`` (including it)."""
        if source not in self.network:
            raise KeyError(f"unknown segment id {source}")
        seen = {source}
        frontier = [source]
        while frontier:
            current = frontier.pop()
            for neighbor in self.network.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return sorted(seen)
