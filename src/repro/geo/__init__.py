"""Geographic substrate.

The paper extracts Shenzhen trips from raw GPS, map-matches them onto
the OSM road network (Newson & Krumm HMM map matching), and derives
per-road speed context.  This package provides the same primitives:

- :mod:`repro.geo.coords` — WGS-84 points and projections.
- :mod:`repro.geo.distance` — great-circle (haversine) distance, the
  ``Dist`` function of the paper's Eq. 4.
- :mod:`repro.geo.roadnet` — road segments, road types, and the road
  graph.
- :mod:`repro.geo.network_builder` — synthetic Shenzhen-like road
  network generation (substitute for the proprietary OSM extract).
- :mod:`repro.geo.mapmatch` — HMM map matching of noisy GPS traces onto
  the road graph.
"""

from repro.geo.coords import BoundingBox, LatLon, destination_point
from repro.geo.distance import (
    EARTH_RADIUS_M,
    bearing_deg,
    haversine_m,
    path_length_m,
)
from repro.geo.mapmatch import HmmMapMatcher, MapMatchResult
from repro.geo.network_builder import CityNetworkBuilder, NetworkSpec
from repro.geo.roadnet import RoadNetwork, RoadSegment, RoadType
from repro.geo.router import RouteNotFound, Router

__all__ = [
    "BoundingBox",
    "CityNetworkBuilder",
    "EARTH_RADIUS_M",
    "HmmMapMatcher",
    "LatLon",
    "MapMatchResult",
    "NetworkSpec",
    "RoadNetwork",
    "RoadSegment",
    "RoadType",
    "RouteNotFound",
    "Router",
    "bearing_deg",
    "destination_point",
    "haversine_m",
    "path_length_m",
]
