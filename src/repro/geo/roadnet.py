"""Road network model.

Segments carry the attributes the paper's pipeline needs: a road type
(OSM highway class), geometry, length, and a free-flow speed used by the
synthetic data generator.  The network is a graph over segment endpoints
so trips can be routed and adjacent RSUs discovered.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geo.coords import LatLon
from repro.geo.distance import haversine_m


class RoadType(enum.Enum):
    """OSM highway classes used in the paper (Tables III and V)."""

    MOTORWAY = "motorway"
    MOTORWAY_LINK = "motorway_link"
    TRUNK = "trunk"
    TRUNK_LINK = "trunk_link"
    PRIMARY = "primary"
    PRIMARY_LINK = "primary_link"
    SECONDARY = "secondary"
    SECONDARY_LINK = "secondary_link"
    TERTIARY = "tertiary"
    RESIDENTIAL = "residential"

    @property
    def is_link(self) -> bool:
        return self.value.endswith("_link")


#: Typical free-flow speed by road type, km/h.  Motorway / motorway-link
#: values follow the paper's Table III (mean speeds 160 and 115 km/h in
#: the filtered dataset); the rest follow common urban practice.
FREE_FLOW_KMH: Dict[RoadType, float] = {
    RoadType.MOTORWAY: 160.0,
    RoadType.MOTORWAY_LINK: 115.0,
    RoadType.TRUNK: 80.0,
    RoadType.TRUNK_LINK: 60.0,
    RoadType.PRIMARY: 60.0,
    RoadType.PRIMARY_LINK: 45.0,
    RoadType.SECONDARY: 50.0,
    RoadType.SECONDARY_LINK: 40.0,
    RoadType.TERTIARY: 40.0,
    RoadType.RESIDENTIAL: 30.0,
}


@dataclass
class RoadSegment:
    """One road trunk — the paper's unit of RSU coverage.

    Attributes
    ----------
    segment_id:
        The ``RdID`` of the paper's Table II.
    road_type:
        OSM highway class.
    polyline:
        Ordered geometry, at least two points.
    free_flow_kmh:
        Nominal free-flow speed; the synthetic generator's normal-speed
        anchor for the segment.
    lanes:
        Number of lanes (used for vehicle-density computations).
    """

    segment_id: int
    road_type: RoadType
    polyline: List[LatLon]
    free_flow_kmh: Optional[float] = None
    lanes: int = 2
    name: str = ""

    length_m: float = field(init=False)

    def __post_init__(self) -> None:
        if len(self.polyline) < 2:
            raise ValueError(
                f"segment {self.segment_id} needs >= 2 points, "
                f"got {len(self.polyline)}"
            )
        if self.lanes < 1:
            raise ValueError(f"segment {self.segment_id} needs >= 1 lane")
        if self.free_flow_kmh is None:
            self.free_flow_kmh = FREE_FLOW_KMH[self.road_type]
        if self.free_flow_kmh <= 0:
            raise ValueError(
                f"segment {self.segment_id} free-flow speed must be positive"
            )
        self.length_m = sum(
            haversine_m(a.lat, a.lon, b.lat, b.lon)
            for a, b in zip(self.polyline, self.polyline[1:])
        )

    @property
    def start(self) -> LatLon:
        return self.polyline[0]

    @property
    def end(self) -> LatLon:
        return self.polyline[-1]

    def point_at(self, offset_m: float) -> LatLon:
        """Interpolate the point ``offset_m`` metres from the start.

        Offsets are clamped to ``[0, length_m]``.
        """
        offset = max(0.0, min(offset_m, self.length_m))
        remaining = offset
        for a, b in zip(self.polyline, self.polyline[1:]):
            leg = haversine_m(a.lat, a.lon, b.lat, b.lon)
            if leg <= 0:
                continue
            if remaining <= leg:
                frac = remaining / leg
                return LatLon(
                    a.lat + (b.lat - a.lat) * frac,
                    a.lon + (b.lon - a.lon) * frac,
                )
            remaining -= leg
        return self.end


class RoadNetwork:
    """A graph of :class:`RoadSegment` objects.

    Segments are connected when they share an endpoint (within a small
    snapping tolerance).  The network answers the queries the rest of
    the system needs: adjacency (for inter-RSU collaboration topology),
    nearest-segment lookup and point projection (for map matching).
    """

    #: Endpoints closer than this (metres) are treated as the same node.
    SNAP_TOLERANCE_M = 15.0

    def __init__(self) -> None:
        self._segments: Dict[int, RoadSegment] = {}
        self._adjacency: Dict[int, set] = {}
        # Spatial hash of snap nodes: cell -> list of (point, members).
        # Cell size ~2x the snap tolerance keeps candidate lists tiny,
        # making add_segment O(1) amortised instead of O(n).
        self._node_grid: Dict[Tuple[int, int], List[Tuple[LatLon, set]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_segment(self, segment: RoadSegment) -> None:
        if segment.segment_id in self._segments:
            raise ValueError(f"duplicate segment id {segment.segment_id}")
        self._segments[segment.segment_id] = segment
        self._adjacency[segment.segment_id] = set()
        for endpoint in (segment.start, segment.end):
            node_members = self._node_for(endpoint)
            for other_id in node_members:
                self._adjacency[segment.segment_id].add(other_id)
                self._adjacency[other_id].add(segment.segment_id)
            node_members.add(segment.segment_id)

    def _grid_cell(self, point: LatLon) -> Tuple[int, int]:
        # ~1e-5 degrees per metre of latitude; cell edge ~2x tolerance.
        cell_deg = self.SNAP_TOLERANCE_M * 2.0 * 1e-5
        return (int(point.lat / cell_deg), int(point.lon / cell_deg))

    def _node_for(self, point: LatLon) -> set:
        cell_lat, cell_lon = self._grid_cell(point)
        for dlat in (-1, 0, 1):
            for dlon in (-1, 0, 1):
                bucket = self._node_grid.get((cell_lat + dlat, cell_lon + dlon))
                if not bucket:
                    continue
                for node_point, members in bucket:
                    if (
                        haversine_m(
                            node_point.lat, node_point.lon, point.lat, point.lon
                        )
                        <= self.SNAP_TOLERANCE_M
                    ):
                        return members
        members: set = set()
        self._node_grid.setdefault((cell_lat, cell_lon), []).append(
            (point, members)
        )
        return members

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self._segments

    def segment(self, segment_id: int) -> RoadSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise KeyError(f"unknown segment id {segment_id}") from None

    def segments(self) -> Iterable[RoadSegment]:
        return self._segments.values()

    def segment_ids(self) -> List[int]:
        return sorted(self._segments)

    def by_road_type(self, road_type: RoadType) -> List[RoadSegment]:
        return [
            seg
            for seg in self._segments.values()
            if seg.road_type is road_type
        ]

    def neighbors(self, segment_id: int) -> List[int]:
        """Segment ids sharing an endpoint with ``segment_id``."""
        if segment_id not in self._adjacency:
            raise KeyError(f"unknown segment id {segment_id}")
        return sorted(self._adjacency[segment_id])

    def project(
        self, segment_id: int, point: LatLon
    ) -> Tuple[float, float, LatLon]:
        """Project ``point`` onto a segment.

        Returns ``(distance_m, offset_m, snapped_point)`` where
        ``distance_m`` is the perpendicular distance from the point to
        the segment and ``offset_m`` the along-segment position of the
        snap.
        """
        segment = self.segment(segment_id)
        best: Optional[Tuple[float, float, LatLon]] = None
        offset_base = 0.0
        cos_lat = math.cos(math.radians(point.lat))
        for a, b in zip(segment.polyline, segment.polyline[1:]):
            # Equirectangular local projection; adequate at city scale.
            ax = (a.lon - point.lon) * cos_lat
            ay = a.lat - point.lat
            bx = (b.lon - point.lon) * cos_lat
            by = b.lat - point.lat
            dx, dy = bx - ax, by - ay
            seg_len2 = dx * dx + dy * dy
            if seg_len2 <= 0:
                t = 0.0
            else:
                t = max(0.0, min(1.0, -(ax * dx + ay * dy) / seg_len2))
            snap = LatLon(a.lat + (b.lat - a.lat) * t, a.lon + (b.lon - a.lon) * t)
            dist = haversine_m(point.lat, point.lon, snap.lat, snap.lon)
            leg = haversine_m(a.lat, a.lon, b.lat, b.lon)
            if best is None or dist < best[0]:
                best = (dist, offset_base + t * leg, snap)
            offset_base += leg
        assert best is not None  # polyline always has >= 1 leg
        return best

    def nearest_segments(
        self, point: LatLon, k: int = 5, max_distance_m: float = 250.0
    ) -> List[Tuple[int, float]]:
        """The ``k`` segments nearest to ``point`` within a radius.

        Returns ``(segment_id, distance_m)`` pairs sorted by distance.
        This is the candidate-generation step of HMM map matching.
        """
        candidates = []
        for segment_id in self._segments:
            dist, _, _ = self.project(segment_id, point)
            if dist <= max_distance_m:
                candidates.append((segment_id, dist))
        candidates.sort(key=lambda item: (item[1], item[0]))
        return candidates[:k]

    def total_length_m(self) -> float:
        return sum(seg.length_m for seg in self._segments.values())
