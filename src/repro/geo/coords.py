"""WGS-84 coordinate primitives."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geo.distance import EARTH_RADIUS_M


@dataclass(frozen=True)
class LatLon:
    """A geographic point in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def as_tuple(self) -> tuple:
        return (self.lat, self.lon)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned lat/lon box (south, west, north, east)."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south > self.north:
            raise ValueError(
                f"south ({self.south}) exceeds north ({self.north})"
            )
        if self.west > self.east:
            raise ValueError(f"west ({self.west}) exceeds east ({self.east})")

    def contains(self, point: LatLon) -> bool:
        return (
            self.south <= point.lat <= self.north
            and self.west <= point.lon <= self.east
        )

    @property
    def center(self) -> LatLon:
        return LatLon(
            (self.south + self.north) / 2.0, (self.west + self.east) / 2.0
        )


#: Bounding box of Shenzhen, China — the paper's study area.
SHENZHEN_BBOX = BoundingBox(south=22.45, west=113.75, north=22.85, east=114.65)


def destination_point(origin: LatLon, bearing_deg: float, distance_m: float) -> LatLon:
    """Point ``distance_m`` metres from ``origin`` along ``bearing_deg``.

    Standard great-circle destination formula; used by the synthetic
    network builder to lay out road geometry.
    """
    angular = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)

    sin_phi2 = math.sin(phi1) * math.cos(angular) + math.cos(phi1) * math.sin(
        angular
    ) * math.cos(theta)
    phi2 = math.asin(max(-1.0, min(1.0, sin_phi2)))
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(angular) * math.cos(phi1),
        math.cos(angular) - math.sin(phi1) * sin_phi2,
    )
    lon = math.degrees(lam2)
    lon = (lon + 540.0) % 360.0 - 180.0  # normalize to [-180, 180)
    return LatLon(math.degrees(phi2), lon)
