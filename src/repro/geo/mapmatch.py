"""HMM map matching (Newson & Krumm, SIGSPATIAL 2009).

The paper map-matches raw GPS trajectories onto the Shenzhen road
network to recover the ``RdID`` / ``RdType`` context of every fix.  We
implement the same HMM formulation:

- **Emission**: a GPS fix observes its true road position through
  zero-mean Gaussian noise, so the likelihood of candidate segment
  ``s`` is ``N(d_perp; 0, sigma_z)`` where ``d_perp`` is the
  perpendicular (great-circle) distance from the fix to ``s``.
- **Transition**: consecutive true positions move plausibly, so the
  probability of hopping between candidates decays exponentially in the
  difference between the great-circle distance of the fixes and the
  on-road distance between the candidate snap points:
  ``p = (1/beta) * exp(-d_t / beta)``.

Decoding is exact Viterbi over the candidate lattice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geo.coords import LatLon
from repro.geo.distance import haversine_m
from repro.geo.roadnet import RoadNetwork


@dataclass(frozen=True)
class MatchedPoint:
    """One map-matched GPS fix."""

    segment_id: int
    snapped: LatLon
    offset_m: float
    emission_distance_m: float


@dataclass
class MapMatchResult:
    """Output of :meth:`HmmMapMatcher.match`."""

    points: List[Optional[MatchedPoint]]

    @property
    def segment_ids(self) -> List[Optional[int]]:
        return [p.segment_id if p is not None else None for p in self.points]

    @property
    def matched_fraction(self) -> float:
        if not self.points:
            return 0.0
        matched = sum(1 for p in self.points if p is not None)
        return matched / len(self.points)


class HmmMapMatcher:
    """Newson–Krumm HMM map matcher over a :class:`RoadNetwork`.

    Parameters
    ----------
    network:
        Road graph to match onto.
    sigma_z_m:
        GPS noise standard deviation (Newson & Krumm estimate 4.07 m;
        consumer car GPS is noisier, default 10 m).
    beta_m:
        Transition-decay scale.
    max_candidates:
        Candidate segments considered per fix.
    search_radius_m:
        Candidate-generation radius; fixes with no segment within the
        radius are left unmatched (``None``).
    """

    def __init__(
        self,
        network: RoadNetwork,
        sigma_z_m: float = 10.0,
        beta_m: float = 20.0,
        max_candidates: int = 5,
        search_radius_m: float = 200.0,
    ) -> None:
        if sigma_z_m <= 0 or beta_m <= 0:
            raise ValueError("sigma_z_m and beta_m must be positive")
        self.network = network
        self.sigma_z_m = sigma_z_m
        self.beta_m = beta_m
        self.max_candidates = max_candidates
        self.search_radius_m = search_radius_m

    # ------------------------------------------------------------------
    def _log_emission(self, distance_m: float) -> float:
        sigma = self.sigma_z_m
        return -0.5 * (distance_m / sigma) ** 2 - math.log(
            sigma * math.sqrt(2.0 * math.pi)
        )

    def _log_transition(
        self,
        prev_fix: LatLon,
        fix: LatLon,
        prev_candidate: MatchedPoint,
        candidate: MatchedPoint,
    ) -> float:
        great_circle = haversine_m(prev_fix.lat, prev_fix.lon, fix.lat, fix.lon)
        if prev_candidate.segment_id == candidate.segment_id:
            route = abs(candidate.offset_m - prev_candidate.offset_m)
        else:
            # Approximate the on-road distance between different
            # segments by the great-circle distance between snap points;
            # adequate for the sparse synthetic network and the standard
            # simplification when no router is available.
            route = haversine_m(
                prev_candidate.snapped.lat,
                prev_candidate.snapped.lon,
                candidate.snapped.lat,
                candidate.snapped.lon,
            )
            if not self._adjacent(prev_candidate.segment_id, candidate.segment_id):
                # Penalize implausible jumps across non-adjacent roads.
                route += 2.0 * self.beta_m
        d_t = abs(great_circle - route)
        return -d_t / self.beta_m - math.log(self.beta_m)

    def _adjacent(self, segment_a: int, segment_b: int) -> bool:
        return segment_b in self.network.neighbors(segment_a)

    def _candidates(self, fix: LatLon) -> List[MatchedPoint]:
        nearest = self.network.nearest_segments(
            fix, k=self.max_candidates, max_distance_m=self.search_radius_m
        )
        result = []
        for segment_id, _ in nearest:
            dist, offset, snapped = self.network.project(segment_id, fix)
            result.append(
                MatchedPoint(
                    segment_id=segment_id,
                    snapped=snapped,
                    offset_m=offset,
                    emission_distance_m=dist,
                )
            )
        return result

    # ------------------------------------------------------------------
    def match(self, fixes: Sequence[LatLon]) -> MapMatchResult:
        """Viterbi-decode the most likely segment sequence for ``fixes``.

        Fixes with no candidate within ``search_radius_m`` break the
        chain: they are reported as ``None`` and the HMM restarts at the
        next matchable fix.
        """
        matched: List[Optional[MatchedPoint]] = [None] * len(fixes)
        index = 0
        while index < len(fixes):
            # Find the start of the next matchable run.
            candidates = self._candidates(fixes[index])
            if not candidates:
                index += 1
                continue
            run_start = index
            lattice = [candidates]
            index += 1
            while index < len(fixes):
                step = self._candidates(fixes[index])
                if not step:
                    break
                lattice.append(step)
                index += 1
            self._decode_run(fixes, run_start, lattice, matched)
        return MapMatchResult(points=matched)

    def _decode_run(
        self,
        fixes: Sequence[LatLon],
        run_start: int,
        lattice: List[List[MatchedPoint]],
        matched: List[Optional[MatchedPoint]],
    ) -> None:
        scores = [
            self._log_emission(candidate.emission_distance_m)
            for candidate in lattice[0]
        ]
        backpointers: List[List[int]] = []
        for step in range(1, len(lattice)):
            prev_fix = fixes[run_start + step - 1]
            fix = fixes[run_start + step]
            step_scores = []
            step_back = []
            for candidate in lattice[step]:
                emission = self._log_emission(candidate.emission_distance_m)
                best_score = -math.inf
                best_prev = 0
                for prev_index, prev_candidate in enumerate(lattice[step - 1]):
                    score = scores[prev_index] + self._log_transition(
                        prev_fix, fix, prev_candidate, candidate
                    )
                    if score > best_score:
                        best_score = score
                        best_prev = prev_index
                step_scores.append(best_score + emission)
                step_back.append(best_prev)
            scores = step_scores
            backpointers.append(step_back)

        best_final = max(range(len(scores)), key=lambda i: scores[i])
        choice = best_final
        for step in range(len(lattice) - 1, -1, -1):
            matched[run_start + step] = lattice[step][choice]
            if step > 0:
                choice = backpointers[step - 1][choice]
