"""Synthetic Shenzhen-like road-network generation.

The paper extracts Shenzhen's road network from OpenStreetMap; that
extract is not redistributable, so we synthesise a city whose *summary
statistics* match the paper's Table V: per-road-type trunk counts and
length distributions (mean/STD), plus the traffic-density share of each
type.  Everything downstream (RSU placement planning, coverage
estimates) consumes only those statistics, so the substitution preserves
the deployment arithmetic.

Two builders are provided:

- :meth:`CityNetworkBuilder.build_city` — the macroscopic inventory of
  ~5.7 K road trunks used by Table V / Table VI / Fig. 9 analyses.
- :meth:`CityNetworkBuilder.build_corridor` — the microscopic topology
  of Fig. 1: four motorways meeting a motorway link at an interchange,
  used by the testbed scenarios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.geo.coords import SHENZHEN_BBOX, BoundingBox, LatLon, destination_point
from repro.geo.roadnet import RoadNetwork, RoadSegment, RoadType
from repro.simkernel.rng import RngRegistry


@dataclass(frozen=True)
class RoadClassSpec:
    """Inventory statistics for one road type (one row of Table V)."""

    count: int
    mean_length_m: float
    std_length_m: float
    traffic_density: float  # share of vehicle traffic on this road type
    lanes: int = 2

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.mean_length_m <= 0:
            raise ValueError("mean length must be positive")
        if self.std_length_m < 0:
            raise ValueError("std length must be non-negative")
        if not 0.0 <= self.traffic_density <= 1.0:
            raise ValueError("traffic density must be in [0, 1]")


#: Table V of the paper, verbatim.
TABLE_V_SPECS: Dict[RoadType, RoadClassSpec] = {
    RoadType.MOTORWAY: RoadClassSpec(435, 3357.0, 7652.0, 0.077, lanes=4),
    RoadType.MOTORWAY_LINK: RoadClassSpec(159, 596.0, 1626.0, 0.028, lanes=2),
    RoadType.TRUNK: RoadClassSpec(656, 1622.0, 5520.0, 0.116, lanes=3),
    RoadType.TRUNK_LINK: RoadClassSpec(247, 339.0, 1931.0, 0.044, lanes=2),
    RoadType.PRIMARY: RoadClassSpec(1431, 668.0, 2939.0, 0.252, lanes=3),
    RoadType.PRIMARY_LINK: RoadClassSpec(191, 211.0, 169.0, 0.034, lanes=1),
    RoadType.SECONDARY: RoadClassSpec(1140, 561.0, 2337.0, 0.201, lanes=2),
    RoadType.SECONDARY_LINK: RoadClassSpec(36, 186.0, 156.0, 0.003, lanes=1),
    RoadType.TERTIARY: RoadClassSpec(1064, 522.0, 2592.0, 0.188, lanes=2),
    RoadType.RESIDENTIAL: RoadClassSpec(303, 334.0, 1470.0, 0.053, lanes=1),
}


@dataclass
class NetworkSpec:
    """Full synthetic-city specification."""

    bbox: BoundingBox = SHENZHEN_BBOX
    road_classes: Dict[RoadType, RoadClassSpec] = field(
        default_factory=lambda: dict(TABLE_V_SPECS)
    )
    #: Scale factor on per-class counts; 1.0 reproduces Table V, smaller
    #: values give fast test-sized cities with the same distributions.
    count_scale: float = 1.0

    def scaled_count(self, road_type: RoadType) -> int:
        spec = self.road_classes[road_type]
        return max(1, int(round(spec.count * self.count_scale)))

    def total_roads(self) -> int:
        return sum(self.scaled_count(rt) for rt in self.road_classes)


def _lognormal_params(mean: float, std: float) -> tuple:
    """(mu, sigma) of a lognormal with the given mean and std."""
    if std <= 0:
        return (math.log(mean), 0.0)
    variance_ratio = (std / mean) ** 2
    sigma2 = math.log1p(variance_ratio)
    mu = math.log(mean) - sigma2 / 2.0
    return (mu, math.sqrt(sigma2))


class CityNetworkBuilder:
    """Generate synthetic road networks calibrated to the paper."""

    #: Roads shorter than this are dropped, mirroring the paper's
    #: filtering of degenerate OSM ways.
    MIN_ROAD_LENGTH_M = 30.0

    def __init__(self, seed: int = 7) -> None:
        self._rng = RngRegistry(seed).stream("geo.network_builder")

    # ------------------------------------------------------------------
    # Macroscopic city
    # ------------------------------------------------------------------
    def build_city(self, spec: Optional[NetworkSpec] = None) -> RoadNetwork:
        """Build the macroscopic road inventory.

        Lengths are drawn from per-class lognormal distributions whose
        mean/STD match Table V; layout is a space-filling scatter inside
        the bounding box (the deployment analyses consume lengths and
        counts, not topology).
        """
        spec = spec or NetworkSpec()
        network = RoadNetwork()
        segment_id = 1
        for road_type in RoadType:
            if road_type not in spec.road_classes:
                continue
            class_spec = spec.road_classes[road_type]
            count = spec.scaled_count(road_type)
            mu, sigma = _lognormal_params(
                class_spec.mean_length_m, class_spec.std_length_m
            )
            lengths = self._rng.lognormal(mu, sigma, size=count)
            lengths = np.clip(lengths, self.MIN_ROAD_LENGTH_M, None)
            for length in lengths:
                origin = self._random_point(spec.bbox)
                bearing = float(self._rng.uniform(0.0, 360.0))
                polyline = self._polyline(origin, bearing, float(length))
                network.add_segment(
                    RoadSegment(
                        segment_id=segment_id,
                        road_type=road_type,
                        polyline=polyline,
                        lanes=class_spec.lanes,
                        name=f"{road_type.value}-{segment_id}",
                    )
                )
                segment_id += 1
        return network

    def _random_point(self, bbox: BoundingBox) -> LatLon:
        lat = float(self._rng.uniform(bbox.south, bbox.north))
        lon = float(self._rng.uniform(bbox.west, bbox.east))
        return LatLon(lat, lon)

    def _polyline(
        self, origin: LatLon, bearing: float, length_m: float, waypoints: int = 3
    ) -> List[LatLon]:
        """A gently curving polyline of total length ``length_m``."""
        points = [origin]
        step = length_m / waypoints
        heading = bearing
        for _ in range(waypoints):
            heading += float(self._rng.normal(0.0, 8.0))
            points.append(destination_point(points[-1], heading, step))
        return points

    # ------------------------------------------------------------------
    # Connected grid city (for multi-hop routed trips)
    # ------------------------------------------------------------------
    def build_grid(
        self,
        rows: int = 4,
        cols: int = 4,
        spacing_m: float = 800.0,
        origin: Optional[LatLon] = None,
    ) -> RoadNetwork:
        """A fully connected Manhattan grid.

        East-west streets are primaries, north-south streets are
        secondaries; every block edge is one segment, so adjacent
        segments share intersections and the network is routable end
        to end — the substrate for mesoscopic multi-hop trips across
        several RSUs.
        """
        if rows < 2 or cols < 2:
            raise ValueError("grid needs at least 2x2 intersections")
        if spacing_m <= 0:
            raise ValueError("spacing must be positive")
        origin = origin or SHENZHEN_BBOX.center
        network = RoadNetwork()
        # Intersection lattice.
        points = [
            [
                destination_point(
                    destination_point(origin, 90.0, col * spacing_m),
                    0.0,
                    row * spacing_m,
                )
                for col in range(cols)
            ]
            for row in range(rows)
        ]
        segment_id = 1
        for row in range(rows):
            for col in range(cols):
                if col + 1 < cols:  # east-west primary
                    network.add_segment(
                        RoadSegment(
                            segment_id,
                            RoadType.PRIMARY,
                            [points[row][col], points[row][col + 1]],
                            lanes=3,
                            name=f"ew-{row}-{col}",
                        )
                    )
                    segment_id += 1
                if row + 1 < rows:  # north-south secondary
                    network.add_segment(
                        RoadSegment(
                            segment_id,
                            RoadType.SECONDARY,
                            [points[row][col], points[row + 1][col]],
                            lanes=2,
                            name=f"ns-{row}-{col}",
                        )
                    )
                    segment_id += 1
        return network

    # ------------------------------------------------------------------
    # Microscopic corridor (Fig. 1 topology)
    # ------------------------------------------------------------------
    def build_corridor(
        self,
        motorways: int = 4,
        motorway_length_m: float = 3000.0,
        link_length_m: float = 600.0,
        center: Optional[LatLon] = None,
    ) -> RoadNetwork:
        """Fig. 1's interchange: ``motorways`` motorways converging on
        one motorway link.

        Segment ids: the link is id 1; motorways are 2..motorways+1.
        All motorways share an endpoint with the link, so
        ``network.neighbors(1)`` returns every motorway — the inter-RSU
        collaboration topology of the 5-RSU experiment (Fig. 6b/6d).
        """
        if motorways < 1:
            raise ValueError("need at least one motorway")
        center = center or SHENZHEN_BBOX.center
        network = RoadNetwork()
        link_end = destination_point(center, 45.0, link_length_m)
        network.add_segment(
            RoadSegment(
                segment_id=1,
                road_type=RoadType.MOTORWAY_LINK,
                polyline=[center, link_end],
                lanes=2,
                name="corridor-link",
            )
        )
        for index in range(motorways):
            bearing = 90.0 + index * (360.0 / max(motorways, 2))
            far = destination_point(center, bearing, motorway_length_m)
            network.add_segment(
                RoadSegment(
                    segment_id=2 + index,
                    road_type=RoadType.MOTORWAY,
                    polyline=[far, center],
                    lanes=4,
                    name=f"corridor-motorway-{index + 1}",
                )
            )
        return network
