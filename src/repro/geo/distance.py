"""Great-circle geometry.

The paper's Eq. 4 computes instantaneous vehicle speed as the
great-circle distance between consecutive GPS fixes divided by the time
delta; :func:`haversine_m` is that ``Dist`` function.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8


def haversine_m(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance in metres between two WGS-84 points."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)

    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial bearing from point 1 to point 2, degrees in [0, 360)."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlam = math.radians(lon2 - lon1)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(
        phi2
    ) * math.cos(dlam)
    return (math.degrees(math.atan2(y, x)) + 360.0) % 360.0


def path_length_m(points: Iterable[Tuple[float, float]]) -> float:
    """Total haversine length of a (lat, lon) polyline in metres."""
    total = 0.0
    prev = None
    for lat, lon in points:
        if prev is not None:
            total += haversine_m(prev[0], prev[1], lat, lon)
        prev = (lat, lon)
    return total
