"""CAD3 reproduction (ICDCS 2021).

Edge-facilitated real-time collaborative abnormal driving distributed
detection — a full-stack, from-scratch Python reproduction.  See the
README for the map of subpackages:

- :mod:`repro.simkernel` — deterministic discrete-event simulation.
- :mod:`repro.geo` — geography, road networks, HMM map matching.
- :mod:`repro.dataset` — synthetic Shenzhen-like driving data.
- :mod:`repro.ml` — Naive Bayes / decision tree / logistic / forest.
- :mod:`repro.streaming` — Kafka-like partitioned pub/sub.
- :mod:`repro.microbatch` — Spark-Streaming-like micro-batches.
- :mod:`repro.net` — DSRC MAC, HTB shaping, wired/cellular links,
  channel management.
- :mod:`repro.core` — the CAD3 system itself.
- :mod:`repro.deploy` — city-scale deployment planning.
- :mod:`repro.experiments` — one harness per paper table/figure.
"""

__version__ = "1.0.0"

#: The paper this repository reproduces.
PAPER = (
    "Alhilal, Braud, Su, Al Asadi, Hui. "
    "CAD3: Edge-facilitated Real-time Collaborative Abnormal Driving "
    "Distributed Detection. ICDCS 2021. DOI 10.1109/ICDCS51616.2021.00074"
)
