"""Fault injection for the resilience experiments.

Declarative fault events (:mod:`repro.faults.events`) scheduled onto a
running scenario by the :class:`~repro.faults.injector.FaultInjector`.
"""

from repro.faults.events import (
    BrokerCrash,
    BurstLoss,
    FaultEvent,
    FaultProfile,
    LinkPartition,
    RsuKill,
    corridor_profiles,
    profile,
)
from repro.faults.injector import FaultInjector, FaultRecord

__all__ = [
    "BrokerCrash",
    "BurstLoss",
    "FaultEvent",
    "FaultInjector",
    "FaultProfile",
    "FaultRecord",
    "LinkPartition",
    "RsuKill",
    "corridor_profiles",
    "profile",
]
