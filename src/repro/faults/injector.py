"""Turns a declarative :class:`~repro.faults.events.FaultProfile`
into scheduled simulator callbacks against a wired-up scenario.

The injector is installed *before* :meth:`TestbedScenario.run` (the
scenario does this itself when its config carries a fault profile) and
keeps a timestamped log of everything it did, which the resilience
experiment reads back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.features import CO_DATA
from repro.faults.events import (
    BrokerCrash,
    BurstLoss,
    FaultProfile,
    LinkPartition,
    RsuKill,
)
from repro.obs import metrics as obs_metrics
from repro.streaming.broker import BrokerUnavailable


@dataclass(frozen=True)
class FaultRecord:
    """One injected action, as it happened."""

    time_s: float
    kind: str
    target: str
    detail: str = ""


class FaultInjector:
    """Schedules a fault profile's events on a scenario's simulator."""

    def __init__(self, scenario) -> None:
        self.scenario = scenario
        self.log: List[FaultRecord] = []
        self.profile: Optional[FaultProfile] = None

    def _record(self, kind: str, target: str, detail: str = "") -> None:
        self.log.append(
            FaultRecord(self.scenario.sim.now, kind, target, detail)
        )
        registry = obs_metrics.active()
        if registry is not None:
            registry.counter("faults.injected", kind=kind).inc()

    # ------------------------------------------------------------------
    def install(self, profile: FaultProfile) -> None:
        """Schedule every event in ``profile``.

        Call once, before the scenario runs; event targets are resolved
        eagerly so a typo in a profile fails fast, not mid-run.
        """
        if self.profile is not None:
            raise RuntimeError("fault profile already installed")
        self.profile = profile
        for event in profile.events:
            if isinstance(event, BrokerCrash):
                self._install_broker_crash(event)
            elif isinstance(event, RsuKill):
                self._install_rsu_kill(event)
            elif isinstance(event, LinkPartition):
                self._install_link_partition(event)
            elif isinstance(event, BurstLoss):
                self._install_burst_loss(event)
            else:
                raise TypeError(f"unknown fault event: {event!r}")

    # ------------------------------------------------------------------
    def _install_broker_crash(self, event: BrokerCrash) -> None:
        rsu = self.scenario.rsus[event.rsu]
        sim = self.scenario.sim
        duration_s = self.scenario.config.duration_s

        def crash() -> None:
            rsu.crash()
            self._record("broker_crash", event.rsu)

        def restart() -> None:
            rsu.restart(until=duration_s)
            if event.ack_loss_s > 0.0:
                # Open the ack-loss window *after* the restart: the
                # producers that buffered during the outage flush into
                # it, so their retries exercise idempotent dedupe.
                rsu.broker.drop_acks_until(sim.now + event.ack_loss_s)
            self._record(
                "broker_restart",
                event.rsu,
                f"ack_loss_s={event.ack_loss_s}",
            )

        sim.at(event.at_s, crash, label=f"fault-crash-{event.rsu}")
        sim.at(
            event.at_s + event.restart_after_s,
            restart,
            label=f"fault-restart-{event.rsu}",
        )

    def _install_rsu_kill(self, event: RsuKill) -> None:
        if not event.failover_to:
            raise ValueError(
                f"RsuKill({event.rsu!r}) needs a failover_to RSU"
            )
        scenario = self.scenario
        failed = scenario.rsus[event.rsu]
        fallback = scenario.rsus[event.failover_to]
        fallback_channel = scenario.channels[event.failover_to]

        def kill() -> None:
            replayed = 0
            if event.replay_state:
                # Snapshot per-car prediction state *before* the node
                # dies (modelling a durable state store the fallback
                # can read), then replay it into the fallback's
                # CO-DATA so driver awareness survives the node.
                cars = sorted(set(failed._history) | set(failed.summaries))
                serde = fallback._serde_for(CO_DATA)
                snapshots = []
                for car in cars:
                    summary = failed.build_summary(car)
                    if summary is not None:
                        snapshots.append(serde.serialize(summary.to_payload()))
                failed.fail()
                for payload in snapshots:
                    try:
                        fallback.broker.produce(
                            CO_DATA, payload, timestamp=scenario.sim.now
                        )
                        replayed += 1
                    except BrokerUnavailable:
                        pass  # fallback is down too; state is lost
            else:
                failed.fail()
            for vehicle in scenario.vehicles:
                if vehicle.rsu is failed:
                    vehicle.migrate(fallback, fallback_channel)
                    vehicle.shaper = scenario._shaper_for(
                        event.failover_to, vehicle.car_id
                    )
            self._record(
                "rsu_kill",
                event.rsu,
                f"failover_to={event.failover_to} replayed={replayed}",
            )

        scenario.sim.at(event.at_s, kill, label=f"fault-kill-{event.rsu}")

    def _install_link_partition(self, event: LinkPartition) -> None:
        src = self.scenario.rsus[event.src]
        if event.dst not in src._links:
            raise KeyError(
                f"no link {event.src!r} -> {event.dst!r}; "
                f"connected: {src.neighbor_names}"
            )
        link = src._links[event.dst]
        sim = self.scenario.sim
        name = f"{event.src}->{event.dst}"

        def down() -> None:
            link.set_down()
            self._record("partition", name)

        def up() -> None:
            link.set_up()
            self._record("partition_heal", name)

        sim.at(event.at_s, down, label=f"fault-partition-{name}")
        sim.at(event.at_s + event.duration_s, up, label=f"fault-heal-{name}")

    def _install_burst_loss(self, event: BurstLoss) -> None:
        channel = self.scenario.channels[event.rsu]
        sim = self.scenario.sim
        saved: List[float] = []

        def start() -> None:
            # Save at burst start, not install time: another event may
            # have legitimately changed the baseline in between.
            saved.append(channel.loss_prob)
            channel.loss_prob = event.loss_prob
            self._record(
                "burst_loss", event.rsu, f"loss_prob={event.loss_prob}"
            )

        def stop() -> None:
            channel.loss_prob = saved.pop()
            self._record("burst_loss_end", event.rsu)

        sim.at(event.at_s, start, label=f"fault-burst-{event.rsu}")
        sim.at(
            event.at_s + event.duration_s,
            stop,
            label=f"fault-burst-end-{event.rsu}",
        )
