"""Fault-event types and named fault profiles.

A fault profile is a declarative list of scheduled fault events; the
:class:`~repro.faults.injector.FaultInjector` turns them into
simulator callbacks against a wired-up
:class:`~repro.core.system.TestbedScenario`.  Profiles are plain
frozen dataclasses so experiments can log, diff, and serialize them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union


@dataclass(frozen=True)
class BrokerCrash:
    """Crash an RSU's broker process at ``at_s``; restart later.

    The pipeline stops and every client request fails until the
    restart; the broker's durable state (logs, committed offsets)
    survives, so the restarted pipeline resumes from its last
    committed micro-batch.  ``ack_loss_s`` opens a window right after
    the restart in which produce *acks* are lost: the broker appends
    but the producer sees a failure and retries — the scenario that
    makes idempotent produce necessary.
    """

    rsu: str
    at_s: float
    restart_after_s: float = 1.0
    ack_loss_s: float = 0.0


@dataclass(frozen=True)
class RsuKill:
    """Kill an RSU process permanently at ``at_s``.

    Its vehicles hand over to ``failover_to``; with ``replay_state``
    (default) the dead node's per-car prediction state is replayed
    into the fallback's CO-DATA — modelling recovery from a durable
    state store — so driver-awareness survives the node.
    """

    rsu: str
    at_s: float
    failover_to: str = ""
    replay_state: bool = True


@dataclass(frozen=True)
class LinkPartition:
    """Partition the ``src -> dst`` wired link for ``duration_s``.

    CO-DATA summaries sent across the partition are dropped (no
    transport retransmission), so the downstream RSU's upstream-
    silence timeout can trip and degrade it to road-only detection.
    """

    src: str
    dst: str
    at_s: float
    duration_s: float


@dataclass(frozen=True)
class BurstLoss:
    """Raise the DSRC frame-loss probability of an RSU's channel to
    ``loss_prob`` for ``duration_s`` (interference burst)."""

    rsu: str
    at_s: float
    duration_s: float
    loss_prob: float = 0.2


FaultEvent = Union[BrokerCrash, RsuKill, LinkPartition, BurstLoss]


@dataclass(frozen=True)
class FaultProfile:
    """A named, ordered set of fault events."""

    name: str
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Accept any iterable of events; store a tuple (hashable).
        object.__setattr__(self, "events", tuple(self.events))


# ----------------------------------------------------------------------
# Named corridor profiles
# ----------------------------------------------------------------------
def corridor_profiles(duration_s: float = 10.0) -> Dict[str, FaultProfile]:
    """The standard fault profiles for the corridor topology, with
    event times scaled to the run length.

    ``chaos`` is the acceptance scenario: a mid-run broker crash +
    restart on a motorway RSU overlapping a 20 % DSRC burst loss.
    """
    mid = duration_s * 0.4
    burst = max(duration_s * 0.15, 0.5)
    return {
        "broker_crash": FaultProfile(
            "broker_crash",
            (
                BrokerCrash(
                    "rsu-mw-1",
                    at_s=mid,
                    restart_after_s=min(1.0, duration_s * 0.1),
                    ack_loss_s=0.2,
                ),
            ),
        ),
        "rsu_kill": FaultProfile(
            "rsu_kill",
            (RsuKill("rsu-mw-1", at_s=mid, failover_to="rsu-mw-2"),),
        ),
        "partition": FaultProfile(
            "partition",
            (
                LinkPartition(
                    "rsu-mw-1", "rsu-mw-link", at_s=mid, duration_s=burst
                ),
            ),
        ),
        "burst_loss": FaultProfile(
            "burst_loss",
            (
                BurstLoss(
                    "rsu-mw-1", at_s=mid, duration_s=burst, loss_prob=0.2
                ),
            ),
        ),
        "chaos": FaultProfile(
            "chaos",
            (
                BrokerCrash(
                    "rsu-mw-1",
                    at_s=mid,
                    restart_after_s=min(1.0, duration_s * 0.1),
                    ack_loss_s=0.2,
                ),
                BurstLoss(
                    "rsu-mw-1",
                    at_s=mid,
                    duration_s=burst,
                    loss_prob=0.2,
                ),
            ),
        ),
    }


def profile(name: str, duration_s: float = 10.0) -> FaultProfile:
    """Look up a named corridor fault profile."""
    profiles = corridor_profiles(duration_s)
    try:
        return profiles[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; "
            f"known: {sorted(profiles)}"
        ) from None
