"""Roadside infrastructure (the paper's Table VI).

The paper pulls traffic-signal and lamp-pole locations from
OpenStreetMap and reports their relative spacing: the deployment idea
is to co-locate edge nodes with existing street furniture.  We
synthesise infrastructure along the synthetic road network with
spacing distributions calibrated to Table VI:

    Traffic light: count 3,278, AVG 244.57 m, STD 299.7, 75% 444.2, MAX 999.5
    Lamp poles:    count   520, AVG  71.9 m, STD  82.8, 75% 100,   MAX 116
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.roadnet import RoadNetwork, RoadType
from repro.simkernel.rng import RngRegistry


class InfrastructureKind(enum.Enum):
    TRAFFIC_LIGHT = "traffic_light"
    LAMP_POLE = "lamp_pole"


@dataclass(frozen=True)
class SpacingSpec:
    """Target spacing distribution for one infrastructure kind."""

    count: int
    mean_m: float
    std_m: float
    max_m: float


#: Table VI of the paper.
TABLE_VI_SPECS: Dict[InfrastructureKind, SpacingSpec] = {
    InfrastructureKind.TRAFFIC_LIGHT: SpacingSpec(3278, 244.57, 299.7, 999.5),
    InfrastructureKind.LAMP_POLE: SpacingSpec(520, 71.9, 82.8, 116.0),
}


@dataclass(frozen=True)
class InfrastructureSpacing:
    """One Table VI row, computed from actual placements."""

    kind: InfrastructureKind
    count: int
    avg_m: float
    std_m: float
    p75_m: float
    max_m: float

    def format_row(self) -> str:
        return (
            f"{self.kind.value:<16}{self.count:>7}{self.avg_m:>10.2f}"
            f"{self.std_m:>10.1f}{self.p75_m:>10.1f}{self.max_m:>10.1f}"
        )


@dataclass
class RoadsideInfrastructure:
    """Placed infrastructure: (road id, along-road offset) points."""

    kind: InfrastructureKind
    positions: List[Tuple[int, float]] = field(default_factory=list)

    def on_road(self, road_id: int) -> List[float]:
        return sorted(
            offset for rid, offset in self.positions if rid == road_id
        )

    def spacings(self) -> List[float]:
        """Gaps between consecutive units along each road."""
        gaps: List[float] = []
        by_road: Dict[int, List[float]] = {}
        for road_id, offset in self.positions:
            by_road.setdefault(road_id, []).append(offset)
        for offsets in by_road.values():
            offsets.sort()
            gaps.extend(b - a for a, b in zip(offsets, offsets[1:]))
        return gaps

    def spacing_statistics(self) -> InfrastructureSpacing:
        gaps = np.array(self.spacings())
        if gaps.size == 0:
            return InfrastructureSpacing(self.kind, len(self.positions), 0, 0, 0, 0)
        return InfrastructureSpacing(
            kind=self.kind,
            count=len(self.positions),
            avg_m=float(gaps.mean()),
            std_m=float(gaps.std()),
            p75_m=float(np.percentile(gaps, 75)),
            max_m=float(gaps.max()),
        )


class SyntheticInfrastructure:
    """Place infrastructure along a network to match Table VI.

    Spacing draws come from a lognormal fitted to the target mean/STD,
    truncated at the target maximum (OSM's Shenzhen extract shows the
    same truncation — no recorded gap above ~1 km for lights).
    """

    def __init__(self, seed: int = 13) -> None:
        self._rng = RngRegistry(seed).stream("deploy.infrastructure")

    def generate(
        self,
        network: RoadNetwork,
        kind: InfrastructureKind,
        spec: Optional[SpacingSpec] = None,
        road_types: Optional[List[RoadType]] = None,
    ) -> RoadsideInfrastructure:
        """Walk roads, dropping units at sampled gaps, until the
        target count is placed."""
        spec = spec or TABLE_VI_SPECS[kind]
        eligible = [
            seg
            for seg in network.segments()
            if road_types is None or seg.road_type in road_types
        ]
        if not eligible:
            raise ValueError("network has no eligible roads")
        # Longest roads first: street furniture concentrates on major
        # roads, and long roads can host full spacing sequences.
        eligible.sort(key=lambda seg: -seg.length_m)
        infrastructure = RoadsideInfrastructure(kind=kind)
        placed = 0
        mu, sigma = self._calibrated_params(spec)
        road_index = 0
        while placed < spec.count and road_index < len(eligible):
            segment = eligible[road_index]
            road_index += 1
            offset = float(self._sample_gap(mu, sigma, spec.max_m))
            while offset < segment.length_m and placed < spec.count:
                infrastructure.positions.append((segment.segment_id, offset))
                placed += 1
                offset += float(self._sample_gap(mu, sigma, spec.max_m))
        return infrastructure

    def _sample_gap(self, mu: float, sigma: float, max_m: float) -> float:
        for _ in range(100):
            gap = self._rng.lognormal(mu, sigma)
            if gap <= max_m:
                return max(gap, 1.0)
        return max_m

    def _calibrated_params(self, spec: SpacingSpec) -> Tuple[float, float]:
        """Fit (mu, sigma) so the max-truncated draws match the spec.

        Rejection at ``max_m`` drags the realised mean below the raw
        lognormal mean, so a plain moment fit lands short of Table VI.
        A few fixed-point rounds scaling mu against the empirically
        measured truncated mean fix that.
        """
        mu, sigma = self._lognormal_params(spec.mean_m, spec.std_m)
        probe = np.random.default_rng(0)
        for _ in range(6):
            draws = probe.lognormal(mu, sigma, 20_000)
            kept = draws[draws <= spec.max_m]
            if kept.size == 0:
                break
            realised = float(np.maximum(kept, 1.0).mean())
            if abs(realised - spec.mean_m) / spec.mean_m < 0.02:
                break
            mu += math.log(spec.mean_m / realised)
        return (mu, sigma)

    @staticmethod
    def _lognormal_params(mean: float, std: float) -> Tuple[float, float]:
        variance_ratio = (std / mean) ** 2
        sigma2 = math.log1p(variance_ratio)
        return (math.log(mean) - sigma2 / 2.0, math.sqrt(sigma2))


def format_table_vi(rows: List[InfrastructureSpacing]) -> str:
    """Render Table VI."""
    header = (
        f"{'RSU host':<16}{'count':>7}{'AVG(m)':>10}{'STD(m)':>10}"
        f"{'75%(m)':>10}{'MAX(m)':>10}"
    )
    return "\n".join([header] + [row.format_row() for row in rows])
