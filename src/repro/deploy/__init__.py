"""Macroscopic deployment planning (Sec. VII-D, Tables V-VI, Fig. 9).

The paper assesses real-world feasibility by (a) counting the RSUs a
city-scale deployment needs per road type given vehicle density and
road lengths (Table V), (b) measuring the spacing of existing roadside
infrastructure — traffic lights and lamp poles — that could host the
RSUs (Table VI), and (c) checking coverage of the road network by that
infrastructure (Fig. 9).  This package reproduces all three analyses
over the synthetic city.
"""

from repro.deploy.infrastructure import (
    TABLE_VI_SPECS,
    InfrastructureKind,
    InfrastructureSpacing,
    RoadsideInfrastructure,
    SpacingSpec,
    SyntheticInfrastructure,
    format_table_vi,
)
from repro.deploy.placement import (
    PlacementPlan,
    RoadTypePlacement,
    RsuPlacementPlanner,
)
from repro.deploy.coverage import CoverageReport, assess_coverage

__all__ = [
    "CoverageReport",
    "InfrastructureKind",
    "InfrastructureSpacing",
    "PlacementPlan",
    "RoadTypePlacement",
    "RoadsideInfrastructure",
    "RsuPlacementPlanner",
    "SpacingSpec",
    "SyntheticInfrastructure",
    "TABLE_VI_SPECS",
    "assess_coverage",
    "format_table_vi",
]
