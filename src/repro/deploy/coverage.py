"""Coverage feasibility (the paper's Fig. 9).

Fig. 9 overlays existing roadside infrastructure on the road network
and marks the regions (gray circles) where no street furniture is
close enough to host an RSU — the spots requiring new installations.
This module computes the same assessment in summary form: per-road
coverage by infrastructure within DSRC range, and the list of roads
needing dedicated RSU installs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.deploy.infrastructure import RoadsideInfrastructure
from repro.geo.roadnet import RoadNetwork

#: A conservative DSRC radius ("a range of a few hundred meters").
DEFAULT_DSRC_RANGE_M = 300.0


@dataclass
class CoverageReport:
    """Result of :func:`assess_coverage`."""

    dsrc_range_m: float
    per_road_coverage: Dict[int, float] = field(default_factory=dict)
    uncovered_road_ids: List[int] = field(default_factory=list)
    total_length_m: float = 0.0
    covered_length_m: float = 0.0

    @property
    def covered_fraction(self) -> float:
        if self.total_length_m == 0:
            return 0.0
        return self.covered_length_m / self.total_length_m

    @property
    def n_uncovered_roads(self) -> int:
        return len(self.uncovered_road_ids)

    def format_summary(self) -> str:
        return (
            f"coverage: {self.covered_fraction:.1%} of "
            f"{self.total_length_m / 1000:.0f} km road length within "
            f"{self.dsrc_range_m:.0f} m of existing infrastructure; "
            f"{self.n_uncovered_roads} roads need new RSU installs"
        )


def _covered_length(
    road_length_m: float, offsets: List[float], dsrc_range_m: float
) -> float:
    """Length of a road covered by units at ``offsets`` (interval
    union of [offset - range, offset + range] clamped to the road)."""
    if not offsets:
        return 0.0
    intervals = [
        (max(0.0, o - dsrc_range_m), min(road_length_m, o + dsrc_range_m))
        for o in sorted(offsets)
    ]
    covered = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start <= current_end:
            current_end = max(current_end, end)
        else:
            covered += current_end - current_start
            current_start, current_end = start, end
    covered += current_end - current_start
    return covered


def assess_coverage(
    network: RoadNetwork,
    infrastructures: List[RoadsideInfrastructure],
    dsrc_range_m: float = DEFAULT_DSRC_RANGE_M,
) -> CoverageReport:
    """Fraction of each road within DSRC range of any infrastructure.

    Roads with zero coverage are the Fig. 9 "gray circle" locations
    that require dedicated RSU installation.
    """
    if dsrc_range_m <= 0:
        raise ValueError("DSRC range must be positive")
    report = CoverageReport(dsrc_range_m=dsrc_range_m)
    offsets_by_road: Dict[int, List[float]] = {}
    for infrastructure in infrastructures:
        for road_id, offset in infrastructure.positions:
            offsets_by_road.setdefault(road_id, []).append(offset)
    for segment in network.segments():
        covered = _covered_length(
            segment.length_m,
            offsets_by_road.get(segment.segment_id, []),
            dsrc_range_m,
        )
        fraction = covered / segment.length_m if segment.length_m > 0 else 0.0
        report.per_road_coverage[segment.segment_id] = fraction
        report.total_length_m += segment.length_m
        report.covered_length_m += covered
        if fraction == 0.0:
            report.uncovered_road_ids.append(segment.segment_id)
    report.uncovered_road_ids.sort()
    return report
