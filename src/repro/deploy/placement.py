"""RSU placement planning (the paper's Table V).

Table V reports, per road type, the traffic-density share, road count,
mean/STD road length, and the number of RSUs required.  The paper's
counts are consistent with one RSU per kilometre of road ("takes into
account both DSRC range and average road length" — a 1 km coverage
diameter is twice a conservative ~500 m DSRC radius), restricted to
frequently used roads.  The planner implements that rule over an
arbitrary road network and reproduces Table V on the calibrated
synthetic city.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.geo.roadnet import RoadNetwork, RoadType


@dataclass(frozen=True)
class RoadTypePlacement:
    """One row of Table V."""

    road_type: RoadType
    traffic_density: float
    n_roads: int
    mean_length_m: float
    std_length_m: float
    rsus_required: int


@dataclass
class PlacementPlan:
    """The full Table V plus aggregate capacity numbers."""

    rows: List[RoadTypePlacement]
    rsu_spacing_m: float
    vehicles_per_rsu: int

    @property
    def total_rsus(self) -> int:
        return sum(row.rsus_required for row in self.rows)

    @property
    def total_vehicle_capacity(self) -> int:
        """Concurrent road users the deployment can serve.

        The paper: "With a single RSU per road trunk, CAD3 can support
        a total of 13 million concurrent road users" (51,129 trunks x
        256 vehicles).  The per-row capacity uses the planner's
        ``vehicles_per_rsu``.
        """
        return self.total_rsus * self.vehicles_per_rsu

    def row(self, road_type: RoadType) -> RoadTypePlacement:
        for row in self.rows:
            if row.road_type is road_type:
                return row
        raise KeyError(f"no placement row for {road_type}")

    def format_table(self) -> str:
        """Render in the paper's Table V layout."""
        lines = [
            f"{'Road':<16}{'Density':>9}{'#road':>8}{'Mean(m)':>10}"
            f"{'STD(m)':>10}{'RSUs':>7}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.road_type.value:<16}{row.traffic_density:>8.1%}"
                f"{row.n_roads:>8}{row.mean_length_m:>10.0f}"
                f"{row.std_length_m:>10.0f}{row.rsus_required:>7}"
            )
        lines.append(f"{'TOTAL':<16}{'':>8}{'':>8}{'':>10}{'':>10}"
                     f"{self.total_rsus:>7}")
        return "\n".join(lines)


class RsuPlacementPlanner:
    """Compute RSU requirements for a road network.

    Parameters
    ----------
    rsu_spacing_m:
        Road length served by one RSU; the paper's Table V counts are
        consistent with 1,000 m.
    vehicles_per_rsu:
        Concurrent-vehicle capacity of one RSU (the paper demonstrates
        256 under 50 ms).
    min_traffic_density:
        Road types below this traffic share are skipped ("for cost
        efficiency, the deployment considers frequently used roads").
    """

    def __init__(
        self,
        rsu_spacing_m: float = 1000.0,
        vehicles_per_rsu: int = 256,
        min_traffic_density: float = 0.0,
    ) -> None:
        if rsu_spacing_m <= 0:
            raise ValueError("spacing must be positive")
        if vehicles_per_rsu < 1:
            raise ValueError("capacity must be >= 1")
        self.rsu_spacing_m = rsu_spacing_m
        self.vehicles_per_rsu = vehicles_per_rsu
        self.min_traffic_density = min_traffic_density

    def plan(
        self,
        network: RoadNetwork,
        traffic_density: Dict[RoadType, float],
    ) -> PlacementPlan:
        """Build Table V for ``network``.

        ``traffic_density`` gives each road type's share of vehicle
        traffic (the Density column); types missing from the mapping
        are treated as carrying no traffic and skipped.
        """
        rows = []
        for road_type in RoadType:
            density = traffic_density.get(road_type, 0.0)
            if density < self.min_traffic_density:
                continue
            segments = network.by_road_type(road_type)
            if not segments:
                continue
            lengths = np.array([seg.length_m for seg in segments])
            rsus = int(lengths.sum() / self.rsu_spacing_m)
            rows.append(
                RoadTypePlacement(
                    road_type=road_type,
                    traffic_density=density,
                    n_roads=len(segments),
                    mean_length_m=float(lengths.mean()),
                    std_length_m=float(lengths.std()),
                    rsus_required=max(rsus, 1),
                )
            )
        return PlacementPlan(
            rows=rows,
            rsu_spacing_m=self.rsu_spacing_m,
            vehicles_per_rsu=self.vehicles_per_rsu,
        )

    def plan_for_demand(
        self,
        network: RoadNetwork,
        traffic_density: Dict[RoadType, float],
        peak_vehicles: int,
    ) -> PlacementPlan:
        """Size the deployment for coverage *and* peak capacity.

        The coverage rule (one RSU per km) under-provisions road types
        that carry a large traffic share over little road length (the
        link classes): at peak, their per-RSU vehicle count exceeds
        the demonstrated 256-vehicle envelope.  This variant raises
        each class's RSU count to
        ``max(coverage_rsus, ceil(peak_share / vehicles_per_rsu))``,
        making the citywide peak feasible by construction.
        """
        if peak_vehicles < 0:
            raise ValueError("peak_vehicles must be non-negative")
        base = self.plan(network, traffic_density)
        total_density = sum(row.traffic_density for row in base.rows)
        rows = []
        for row in base.rows:
            share = row.traffic_density / total_density
            demand_rsus = math.ceil(
                share * peak_vehicles / self.vehicles_per_rsu
            )
            rows.append(
                RoadTypePlacement(
                    road_type=row.road_type,
                    traffic_density=row.traffic_density,
                    n_roads=row.n_roads,
                    mean_length_m=row.mean_length_m,
                    std_length_m=row.std_length_m,
                    rsus_required=max(row.rsus_required, demand_rsus),
                )
            )
        return PlacementPlan(
            rows=rows,
            rsu_spacing_m=self.rsu_spacing_m,
            vehicles_per_rsu=self.vehicles_per_rsu,
        )

    def rsus_for_road(self, length_m: float) -> int:
        """RSUs for a single road of ``length_m`` (at least one)."""
        if length_m <= 0:
            raise ValueError("length must be positive")
        return max(1, math.ceil(length_m / self.rsu_spacing_m))
