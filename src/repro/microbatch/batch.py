"""The RDD analogue: an immutable batch with functional operators."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Tuple


class Batch:
    """An immutable collection of records for one micro-batch interval.

    Operators return new batches; the underlying tuple is never
    mutated.  ``batch_time`` is the start of the micro-batch interval
    the records were collected in (simulated seconds).
    """

    __slots__ = ("_items", "batch_time")

    def __init__(self, items: Iterable[Any], batch_time: float = 0.0) -> None:
        self._items: Tuple[Any, ...] = tuple(items)
        self.batch_time = batch_time

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def count(self) -> int:
        return len(self._items)

    def collect(self) -> List[Any]:
        return list(self._items)

    def first(self) -> Any:
        if not self._items:
            raise IndexError("first() on an empty batch")
        return self._items[0]

    def is_empty(self) -> bool:
        return not self._items

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "Batch":
        return Batch((fn(item) for item in self._items), self.batch_time)

    def filter(self, predicate: Callable[[Any], bool]) -> "Batch":
        return Batch(
            (item for item in self._items if predicate(item)), self.batch_time
        )

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "Batch":
        return Batch(
            (out for item in self._items for out in fn(item)), self.batch_time
        )

    def map_partitions(
        self, fn: Callable[[List[Any]], Iterable[Any]]
    ) -> "Batch":
        """Apply ``fn`` to the whole record list at once.

        This is how the detection stage runs: one vectorised model call
        per batch rather than one per record.
        """
        return Batch(fn(list(self._items)), self.batch_time)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        if not self._items:
            raise ValueError("reduce() on an empty batch")
        result = self._items[0]
        for item in self._items[1:]:
            result = fn(result, item)
        return result

    def group_by(self, key_fn: Callable[[Any], Any]) -> dict:
        groups: dict = {}
        for item in self._items:
            groups.setdefault(key_fn(item), []).append(item)
        return groups

    def __repr__(self) -> str:
        return f"Batch(n={len(self._items)}, t={self.batch_time:.3f})"


class BlockBatch:
    """A micro-batch of contiguous wire-byte segments (the block path).

    Where :class:`Batch` holds one Python object per record, a
    BlockBatch holds the :class:`~repro.streaming.records.BlockSegment`
    slabs a :meth:`Consumer.poll_block` returned — per-record objects
    are never materialized between the broker log and the vectorized
    sink (the columnar RSU decodes the segments with one
    ``np.frombuffer`` each).  Only the introspection subset of the
    Batch API is provided; block-mode sinks own the decode.

    Segments borrow append-only slab storage, so a BlockBatch stays
    readable while it waits in the processing queue even as the
    partition keeps appending.
    """

    __slots__ = ("segments", "batch_time", "_count")

    def __init__(self, segments, batch_time: float = 0.0) -> None:
        self.segments = list(segments)
        self.batch_time = batch_time
        self._count = sum(segment.count for segment in self.segments)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def count(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def collect(self) -> List[Any]:
        """Materialize the per-record value bytes, in segment order
        (the record order the per-record poll would have returned)."""
        values: List[Any] = []
        for segment in self.segments:
            values.extend(segment.value_list())
        return values

    def __repr__(self) -> str:
        return (
            f"BlockBatch(n={self._count}, segments={len(self.segments)}, "
            f"t={self.batch_time:.3f})"
        )
