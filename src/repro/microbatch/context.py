"""StreamingContext: micro-batch scheduling on the simulation clock.

The paper creates "micro-batches of 50 ms (RDDs) to read data from the
topic IN-DATA, on which we apply the algorithm".  The context ticks on
that interval, polls the source consumer, and models the batch's
processing latency with a calibrated linear cost model so the
experiments reproduce Fig. 6a's processing-time curve (7.3 ms at 8
vehicles to 11.7 ms at 256).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.microbatch.batch import Batch, BlockBatch
from repro.microbatch.dstream import DStream
from repro.obs import metrics as obs_metrics
from repro.simkernel.simulator import Simulator
from repro.streaming.consumer import Consumer


@dataclass(frozen=True)
class ProcessingModel:
    """Linear batch-processing cost: ``base + per_record * n``.

    Defaults are calibrated to the paper's testbed (Intel i7-5820K, 6
    Spark workers): Fig. 6a reports ~7.3 ms average processing at 8
    vehicles (~4 records per 50 ms batch) and ~11.7 ms at 256 (~128
    records), i.e. ~35 us of marginal cost per record over a ~7 ms
    floor (task scheduling + model scoring fixed costs).
    """

    base_s: float = 7.2e-3
    per_record_s: float = 35e-6
    #: Processing jitter as a fraction of the mean (uniform), modelling
    #: JVM/GC noise on the testbed.  Set to 0 for fully deterministic runs.
    jitter_fraction: float = 0.10

    def duration(self, n_records: int, jitter: float = 0.0) -> float:
        """Processing time for a batch of ``n_records``.

        ``jitter`` in [-1, 1] scales the jitter fraction.
        """
        if n_records < 0:
            raise ValueError("record count cannot be negative")
        mean = self.base_s + self.per_record_s * n_records
        return mean * (1.0 + self.jitter_fraction * jitter)


@dataclass
class BatchMetrics:
    """Per-batch measurements collected by the context."""

    batch_time: float
    n_records: int
    processing_s: float
    completion_time: float

    @property
    def processing_ms(self) -> float:
        return self.processing_s * 1e3


class StreamingContext:
    """Polls a consumer every interval and runs DStream pipelines.

    Parameters
    ----------
    sim:
        Simulation kernel providing the clock.
    consumer:
        Source consumer (subscribed to the paper's ``IN-DATA``).
    interval_s:
        Micro-batch interval; the paper uses 50 ms.
    processing_model:
        Batch cost model.
    jitter_source:
        Zero-argument callable in [-1, 1] driving processing jitter;
        inject a seeded RNG for reproducibility.  ``None`` disables
        jitter.
    raw:
        Poll without deserializing: batches then carry the raw wire
        bytes, and the sink is expected to batch-decode them (the
        columnar RSU path does, via
        :func:`repro.core.wire.decode_telemetry_block`).
    block:
        Poll via :meth:`Consumer.poll_block`: batches are
        :class:`~repro.microbatch.batch.BlockBatch` wire slabs instead
        of per-record lists, and sinks must understand them (the
        block-mode RSU does).  Implies raw semantics.
    name:
        Label for this context's metrics (the owning RSU's name);
        contexts without a name report under ``rsu=""``.

    The ``pre_poll`` attribute, when set, is a zero-argument callable
    invoked at the top of every tick, before the lag observation and
    the poll.  The batched dataplane hooks the RSU's deferred DSRC
    channel flush here: frames whose contention resolves at or before
    the tick instant are appended to the broker exactly where the
    per-frame delivery events would have put them.
    """

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        interval_s: float = 0.050,
        processing_model: Optional[ProcessingModel] = None,
        jitter_source: Optional[Callable[[], float]] = None,
        raw: bool = False,
        block: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive: {interval_s}")
        self.sim = sim
        self.consumer = consumer
        self.interval_s = interval_s
        self.processing_model = processing_model or ProcessingModel()
        self.jitter_source = jitter_source
        self.raw = raw
        self.block = block
        self.name = name or ""
        self.stream = DStream()
        self.metrics: List[BatchMetrics] = []
        self.pre_poll: Optional[Callable[[], None]] = None
        self._stop: Optional[Callable[[], None]] = None
        self._busy_until = 0.0

    def start(self, until: Optional[float] = None) -> None:
        """Begin ticking every ``interval_s`` until ``until``.

        Contexts started at the same instant with the same interval
        (every RSU in a scenario starts at t=0 with the paper's 50 ms
        cadence) coalesce into one kernel tick group: one queue entry
        fires all their polls, in start order — the same order their
        independent tick events fired in before coalescing.
        """
        if self._stop is not None:
            raise RuntimeError("StreamingContext already started")
        self._stop = self.sim.every_group(
            self.interval_s, self._tick, until=until, label="microbatch-tick"
        )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        batch_time = self.sim.now
        if self.pre_poll is not None:
            # Deferred-dataplane flush: contended frames due at or
            # before this instant land on the broker first, exactly as
            # their per-frame delivery events would have.
            self.pre_poll()
        registry = obs_metrics.active()
        if registry is not None:
            # Consumer lag *before* the poll = IN-DATA queue depth as
            # the batch is cut (pure read: lag() never commits).
            registry.histogram(
                "broker.in_data_depth",
                obs_metrics.DEPTH_EDGES,
                rsu=self.name,
            ).observe(self.consumer.lag())
        if self.block:
            segments = self.consumer.poll_block()
            batch = BlockBatch(segments, batch_time=batch_time)
            if registry is not None and segments:
                registry.counter(
                    "dataplane.block_segments", rsu=self.name
                ).inc(len(segments))
                registry.counter(
                    "dataplane.block_records", rsu=self.name
                ).inc(len(batch))
        else:
            records = self.consumer.poll(deserialize=not self.raw)
            batch = Batch([r.value for r in records], batch_time=batch_time)
        jitter = self.jitter_source() if self.jitter_source else 0.0
        duration = self.processing_model.duration(len(batch), jitter)
        # Batches queue behind an in-flight batch (single processing
        # slot, like one Spark streaming query): if the previous batch
        # has not finished, this one starts when it does.
        start_time = max(batch_time, self._busy_until)
        completion = start_time + duration
        self._busy_until = completion
        self.metrics.append(
            BatchMetrics(
                batch_time=batch_time,
                n_records=len(batch),
                processing_s=duration,
                completion_time=completion,
            )
        )
        if registry is not None:
            registry.histogram(
                "microbatch.batch_size",
                obs_metrics.BATCH_SIZE_EDGES,
                rsu=self.name,
            ).observe(len(batch))
            registry.histogram(
                "microbatch.processing_ms",
                obs_metrics.LATENCY_MS_EDGES,
                rsu=self.name,
            ).observe(duration * 1e3)
        self.sim.at(
            completion,
            lambda b=batch, t=completion: self.stream.process(b, t),
            label="microbatch-complete",
        )

    # ------------------------------------------------------------------
    @property
    def batches_processed(self) -> int:
        return len(self.metrics)

    def mean_processing_ms(self, skip_empty: bool = True) -> float:
        """Average per-batch processing time in milliseconds."""
        samples = [
            m.processing_ms
            for m in self.metrics
            if not (skip_empty and m.n_records == 0)
        ]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)
