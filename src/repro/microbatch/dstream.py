"""DStream: a lazily-composed per-batch transformation chain."""

from __future__ import annotations

import collections
from typing import Any, Callable, Deque, Iterable, List

from repro.microbatch.batch import Batch

#: A sink receives the transformed batch and the simulated time at
#: which processing of the batch completed.
Sink = Callable[[Batch, float], None]


class _WindowState:
    """Buffers the last ``width`` batches for a windowed sink.

    Mirrors Spark Streaming's ``window(windowLength, slideInterval)``:
    every ``slide`` batches, the sink sees one Batch containing the
    records of the last ``width`` batches (fewer during warm-up).
    """

    def __init__(self, width: int, slide: int, sink: Sink) -> None:
        if width < 1:
            raise ValueError(f"window width must be >= 1: {width}")
        if slide < 1:
            raise ValueError(f"window slide must be >= 1: {slide}")
        self.width = width
        self.slide = slide
        self.sink = sink
        self._buffer: Deque[Batch] = collections.deque(maxlen=width)
        self._since_emit = 0

    def push(self, batch: Batch, completion_time: float) -> None:
        self._buffer.append(batch)
        self._since_emit += 1
        if self._since_emit >= self.slide:
            self._since_emit = 0
            merged = Batch(
                (item for buffered in self._buffer for item in buffered),
                batch_time=self._buffer[0].batch_time,
            )
            self.sink(merged, completion_time)


class DStream:
    """A pipeline of batch transformations ending in zero or more sinks.

    Construction is declarative (``map``/``filter``/... return new
    DStreams sharing the sink registry); execution happens when the
    owning :class:`~repro.microbatch.context.StreamingContext` calls
    :meth:`process` once per micro-batch.
    """

    def __init__(self, transforms: List[Callable[[Batch], Batch]] = None, _sinks=None) -> None:
        self._transforms: List[Callable[[Batch], Batch]] = list(transforms or [])
        # Sinks are shared across derived DStreams so registering a
        # sink on a derived stream is visible to the context that owns
        # the root.
        self._sinks: List[tuple] = _sinks if _sinks is not None else []

    # ------------------------------------------------------------------
    # Transformations (each returns a derived stream)
    # ------------------------------------------------------------------
    def _derive(self, transform: Callable[[Batch], Batch]) -> "DStream":
        return DStream(self._transforms + [transform], self._sinks)

    def map(self, fn: Callable[[Any], Any]) -> "DStream":
        return self._derive(lambda batch: batch.map(fn))

    def filter(self, predicate: Callable[[Any], bool]) -> "DStream":
        return self._derive(lambda batch: batch.filter(predicate))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "DStream":
        return self._derive(lambda batch: batch.flat_map(fn))

    def map_partitions(
        self, fn: Callable[[List[Any]], Iterable[Any]]
    ) -> "DStream":
        return self._derive(lambda batch: batch.map_partitions(fn))

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def foreach_batch(self, sink: Sink) -> "DStream":
        """Register ``sink(batch, completion_time)`` at this point of
        the chain."""
        self._sinks.append((list(self._transforms), sink))
        return self

    def foreach_window(
        self, width: int, sink: Sink, slide: int = 1
    ) -> "DStream":
        """Register a sliding-window sink at this point of the chain.

        Every ``slide`` batches, ``sink`` receives one Batch merging
        the last ``width`` batches' records — Spark Streaming's
        window operation, used e.g. for rolling road-speed context.
        """
        state = _WindowState(width, slide, sink)
        self._sinks.append((list(self._transforms), state.push))
        return self

    # ------------------------------------------------------------------
    # Execution (called by the StreamingContext)
    # ------------------------------------------------------------------
    def process(self, batch: Batch, completion_time: float) -> None:
        """Run every sink's transform chain on ``batch``."""
        for transforms, sink in self._sinks:
            transformed = batch
            for transform in transforms:
                transformed = transform(transformed)
            sink(transformed, completion_time)

    @property
    def n_sinks(self) -> int:
        return len(self._sinks)
