"""Micro-batch stream-processing substrate (the Spark Streaming substitute).

The paper's pipeline consumes the ``IN-DATA`` topic through Spark
Streaming with **50 ms micro-batches**: the continuous stream is
divided into small RDDs that the Spark engine processes, and results
are written back to Kafka.  This package reproduces that execution
model on the simulation clock:

- :class:`~repro.microbatch.batch.Batch` — the RDD analogue: an
  immutable record collection with functional operators.
- :class:`~repro.microbatch.dstream.DStream` — a lazily-composed
  transformation chain applied to every batch.
- :class:`~repro.microbatch.context.StreamingContext` — ticks every
  batch interval, polls the source consumer, runs the pipeline, and
  models processing latency via a calibrated cost model so Fig. 6a's
  processing-time curve is reproducible.
"""

from repro.microbatch.batch import Batch
from repro.microbatch.context import (
    BatchMetrics,
    ProcessingModel,
    StreamingContext,
)
from repro.microbatch.dstream import DStream

__all__ = [
    "Batch",
    "BatchMetrics",
    "DStream",
    "ProcessingModel",
    "StreamingContext",
]
