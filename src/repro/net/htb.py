"""Hierarchical token bucket (the ``tc htb`` analogue).

The paper's PC1 shapes each emulated vehicle's traffic with netem HTB:
every producer gets an assured 100 Kb/s, borrowing up to the shared
27 Mb/s DSRC ceiling.  This module models that hierarchy: leaf classes
accumulate tokens at their assured rate and may borrow from the parent
when their own bucket is empty, provided the parent has headroom.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class HtbClass:
    """One token-bucket class.

    Parameters
    ----------
    name:
        Class identity (e.g. ``"vehicle-17"``).
    rate_bps:
        Assured (guaranteed) rate.
    ceil_bps:
        Maximum rate including borrowed bandwidth; must be >= rate.
    burst_bytes:
        Bucket depth; defaults to 100 ms worth of the ceiling.
    priority:
        Borrow priority under :meth:`HtbShaper.send_prioritized`
        (lower value = charged first, like ``tc htb prio``).  Plain
        :meth:`HtbShaper.send` ignores it.
    """

    def __init__(
        self,
        name: str,
        rate_bps: float,
        ceil_bps: Optional[float] = None,
        burst_bytes: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps}")
        ceil = ceil_bps if ceil_bps is not None else rate_bps
        if ceil < rate_bps:
            raise ValueError(
                f"ceil ({ceil}) must be >= rate ({rate_bps})"
            )
        self.name = name
        self.rate_bps = rate_bps
        self.ceil_bps = ceil
        self.burst_bytes = (
            burst_bytes if burst_bytes is not None else ceil * 0.100 / 8.0
        )
        self.priority = priority
        self.tokens = self.burst_bytes
        self._last_refill = 0.0
        self.bytes_sent = 0
        self.bytes_borrowed = 0

    def refill(self, now: float) -> None:
        """Accrue tokens at the assured rate since the last refill."""
        if now < self._last_refill:
            raise ValueError(
                f"time went backwards in {self.name!r}: "
                f"{now} < {self._last_refill}"
            )
        elapsed = now - self._last_refill
        self.tokens = min(
            self.burst_bytes, self.tokens + elapsed * self.rate_bps / 8.0
        )
        self._last_refill = now


class HtbShaper:
    """A one-level HTB hierarchy: a root class and its leaves.

    :meth:`send` charges a leaf for a packet, borrowing from the root
    when the leaf's own tokens run out — the netem configuration of the
    paper's testbed (min 100 Kb/s per producer, 27 Mb/s shared max).
    """

    def __init__(self, root: HtbClass) -> None:
        self.root = root
        self._leaves: Dict[str, HtbClass] = {}

    def add_leaf(self, leaf: HtbClass) -> HtbClass:
        if leaf.name in self._leaves:
            raise ValueError(f"duplicate leaf class {leaf.name!r}")
        if leaf.ceil_bps > self.root.ceil_bps:
            raise ValueError(
                f"leaf {leaf.name!r} ceil ({leaf.ceil_bps}) exceeds the "
                f"root ceil ({self.root.ceil_bps})"
            )
        self._leaves[leaf.name] = leaf
        return leaf

    def leaf(self, name: str) -> HtbClass:
        try:
            return self._leaves[name]
        except KeyError:
            raise KeyError(f"unknown HTB class {name!r}") from None

    def leaves(self) -> List[HtbClass]:
        return list(self._leaves.values())

    def send(self, leaf_name: str, packet_bytes: int, now: float) -> float:
        """Charge a packet to ``leaf_name`` at time ``now``.

        Returns the delay (seconds) before the packet clears the
        shaper: zero when tokens are available (own or borrowed),
        otherwise the time for the leaf's assured rate to accrue the
        deficit — the HTB behaviour of delaying, not dropping.
        """
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive: {packet_bytes}")
        leaf = self.leaf(leaf_name)
        leaf.refill(now)
        self.root.refill(now)
        if leaf.tokens >= packet_bytes:
            leaf.tokens -= packet_bytes
            leaf.bytes_sent += packet_bytes
            return 0.0
        deficit = packet_bytes - leaf.tokens
        if self.root.tokens >= deficit:
            # Borrow the deficit from the parent.
            self.root.tokens -= deficit
            leaf.tokens = 0.0
            leaf.bytes_sent += packet_bytes
            leaf.bytes_borrowed += deficit
            return 0.0
        # Neither own nor borrowable tokens: wait for the assured rate.
        leaf.tokens = 0.0
        leaf.bytes_sent += packet_bytes
        return deficit / (leaf.rate_bps / 8.0)

    def send_deferred(self, leaf_name: str, packet_bytes: int, now: float) -> float:
        """:meth:`send` for the batched dataplane: lazy root accrual.

        Token accrual is associative — ``refill(t1); refill(t3)`` leaves
        the same level as ``refill(t1); refill(t2); refill(t3)``, since
        min-capped linear growth composes — so the shared root bucket is
        refilled only when a packet actually needs to borrow, instead of
        on every packet.  Delays, leaf token levels, ``bytes_sent`` and
        borrow amounts are bit-identical to :meth:`send`; the only state
        that differs is the root's idle ``_last_refill`` stamp, which
        the next borrow (or a plain :meth:`send`) catches up exactly.
        The leaf still refills per packet: its level at ``now`` is what
        prices this packet.
        """
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive: {packet_bytes}")
        leaf = self.leaf(leaf_name)
        leaf.refill(now)
        if leaf.tokens >= packet_bytes:
            leaf.tokens -= packet_bytes
            leaf.bytes_sent += packet_bytes
            return 0.0
        self.root.refill(now)
        deficit = packet_bytes - leaf.tokens
        if self.root.tokens >= deficit:
            self.root.tokens -= deficit
            leaf.tokens = 0.0
            leaf.bytes_sent += packet_bytes
            leaf.bytes_borrowed += deficit
            return 0.0
        leaf.tokens = 0.0
        leaf.bytes_sent += packet_bytes
        return deficit / (leaf.rate_bps / 8.0)

    def send_prioritized(
        self, requests: Sequence[Tuple[str, int]], now: float
    ) -> List[float]:
        """Charge a burst of packets in leaf-priority order.

        ``requests`` is ``(leaf_name, packet_bytes)`` pairs submitted
        together (e.g. one CO-DATA refresh tick's frames).  Charging
        runs lowest :attr:`HtbClass.priority` value first (stable on
        submission order within a band), so when the burst outruns what
        the shared root can lend, the deficit — and therefore the
        delay — lands on the low-priority band, never on the urgent
        one.  Returns per-packet delays in submission order.
        """
        order = sorted(
            range(len(requests)),
            key=lambda index: (self.leaf(requests[index][0]).priority, index),
        )
        delays = [0.0] * len(requests)
        for index in order:
            leaf_name, packet_bytes = requests[index]
            delays[index] = self.send(leaf_name, packet_bytes, now)
        return delays

    def aggregate_rate_bps(self, elapsed_s: float) -> float:
        """Mean aggregate throughput over ``elapsed_s``."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        total = sum(leaf.bytes_sent for leaf in self._leaves.values())
        return total * 8.0 / elapsed_s
