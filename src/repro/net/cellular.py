"""Cellular (LTE / 5G) links for distant inter-RSU collaboration.

Sec. VII-D: "the challenge is to implement inter-RSU collaboration
where RSUs are not connected (due to long distance).  LTE and 5G are
potential technologies to support distant collaboration where needed"
— with 5G's URLLC profile called out as the efficient candidate.

A :class:`CellularLink` has the same ``send`` contract as
:class:`~repro.net.link.WiredLink` but models one-way latency as a
base value plus lognormal jitter (cellular RTTs are heavy-tailed), so
RSU pairs beyond DSRC/Ethernet reach can still exchange CO-DATA
summaries — at a measurable timeliness cost the ablation benches
quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass(frozen=True)
class CellularProfile:
    """Latency/bandwidth characteristics of one radio technology."""

    name: str
    base_latency_s: float
    jitter_sigma: float  # lognormal sigma on the latency multiplier
    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.base_latency_s <= 0:
            raise ValueError("base latency must be positive")
        if self.jitter_sigma < 0:
            raise ValueError("jitter sigma must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")


#: Typical one-way user-plane latencies: LTE ~25 ms, 5G URLLC ~4 ms.
LTE_PROFILE = CellularProfile("LTE", 25e-3, 0.35, 75_000_000)
NR_5G_PROFILE = CellularProfile("5G", 4e-3, 0.25, 400_000_000)


class CellularLink:
    """A cellular hop between two RSUs beyond wired/DSRC reach.

    Same interface as :class:`~repro.net.link.WiredLink`: ``send``
    schedules delivery on the simulator and returns the delivery time.
    Unlike the wired FIFO, cellular transmissions do not serialize on a
    shared medium here (the cell is shared with background traffic the
    profile's latency already summarises); packets are independent.
    """

    def __init__(
        self,
        sim,
        profile: CellularProfile = NR_5G_PROFILE,
        rng: Optional[np.random.Generator] = None,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self._rng = rng or np.random.default_rng(0)
        self.name = name or f"cellular-{profile.name}"
        self.bytes_sent = 0
        self.packets_sent = 0
        self.latencies_s: list = []

    def one_way_latency_s(self) -> float:
        """Sample one packet's latency: base x lognormal jitter."""
        multiplier = float(
            self._rng.lognormal(0.0, self.profile.jitter_sigma)
        )
        return self.profile.base_latency_s * multiplier

    def serialization_s(self, packet_bytes: int) -> float:
        return packet_bytes * 8.0 / self.profile.bandwidth_bps

    def send(
        self, packet_bytes: int, on_delivered: Callable[[float], None]
    ) -> float:
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive: {packet_bytes}")
        latency = self.one_way_latency_s() + self.serialization_s(packet_bytes)
        delivery = self.sim.now + latency
        self.bytes_sent += packet_bytes
        self.packets_sent += 1
        self.latencies_s.append(latency)
        self.sim.at(
            delivery,
            lambda t=delivery: on_delivered(t),
            label=f"{self.name}-delivery",
        )
        return delivery

    def mean_latency_ms(self) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.mean(self.latencies_s)) * 1e3
