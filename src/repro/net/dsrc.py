"""DSRC / IEEE 802.11p channel models.

Two layers:

1. :class:`DsrcMacModel` — the paper's analytic CSMA/CA model (Eq. 5-6):

       t_v       = num_v * (t_backoff + DIFS + t_pkt)
       t_backoff = p_c * cw_max * t_slot
       DIFS      = SIFS + 2 * t_slot

   with t_slot = 9 us, SIFS = 16 us, cw_max = 255, and p_c <= 0.03 (the
   collision probability, proportional to vehicle density).  With the
   802.11p PHY preamble (40 us at 10 MHz) and a 32-byte MAC header on a
   200-byte payload this reproduces the paper's stated access times:
   ~54 ms at 27 Mb/s ("MCS 8", 64-QAM 3/4) and ~90 ms at 9 Mb/s
   ("MCS 3") for 256 vehicles, versus the paper's 54.28 / 92.62 ms.

2. :class:`DsrcChannel` — a discrete-event shared medium for the
   testbed simulation: transmissions serialize on the channel, each
   paying DIFS + random backoff + airtime, and contention grows with
   load.

The paper's MCS naming follows its ref. [24] (Bazzi et al.) and is
1-indexed; :data:`MCS_TABLE` holds the eight 10-MHz-channel rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: Shared-medium capacity the paper quotes for DSRC.
DSRC_BANDWIDTH_BPS = 27_000_000


@dataclass(frozen=True)
class McsScheme:
    """One modulation-and-coding scheme of the 802.11p 10 MHz channel."""

    index: int
    modulation: str
    coding_rate: str
    data_rate_bps: float

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0:
            raise ValueError("data rate must be positive")


#: 802.11p data rates on a 10 MHz channel, 1-indexed as in the paper's
#: reference [24].
MCS_TABLE: Dict[int, McsScheme] = {
    1: McsScheme(1, "BPSK", "1/2", 3_000_000),
    2: McsScheme(2, "BPSK", "3/4", 4_500_000),
    3: McsScheme(3, "QPSK", "1/2", 6_000_000),
    4: McsScheme(4, "QPSK", "3/4", 9_000_000),
    5: McsScheme(5, "16-QAM", "1/2", 12_000_000),
    6: McsScheme(6, "16-QAM", "3/4", 18_000_000),
    7: McsScheme(7, "64-QAM", "2/3", 24_000_000),
    8: McsScheme(8, "64-QAM", "3/4", 27_000_000),
}

#: The schemes the paper quotes numbers for.  Note: the paper's
#: "92.62 ms using MCS 3" is only consistent with Eq. 5 at a 9 Mb/s
#: rate (QPSK 3/4); we therefore map the paper's "MCS 3" to that rate
#: while keeping the canonical 1-indexed table above.
PAPER_MCS_3 = McsScheme(3, "QPSK", "3/4", 9_000_000)
PAPER_MCS_8 = MCS_TABLE[8]


@dataclass(frozen=True)
class DsrcMacModel:
    """Analytic CSMA/CA medium-access model (the paper's Eq. 5-6)."""

    t_slot_s: float = 9e-6
    sifs_s: float = 16e-6
    cw_max: int = 255
    collision_prob: float = 0.03
    #: PHY preamble + SIGNAL field duration at 10 MHz.
    preamble_s: float = 40e-6
    #: MAC header + FCS bytes added to every payload.
    mac_overhead_bytes: int = 32

    def __post_init__(self) -> None:
        if not 0.0 <= self.collision_prob <= 1.0:
            raise ValueError("collision_prob must be in [0, 1]")
        if self.cw_max < 1:
            raise ValueError("cw_max must be >= 1")

    @property
    def difs_s(self) -> float:
        """DIFS = SIFS + 2 * t_slot (Eq. 6)."""
        return self.sifs_s + 2.0 * self.t_slot_s

    @property
    def backoff_s(self) -> float:
        """Expected worst-case backoff, t_backoff = p_c * cw_max * t_slot."""
        return self.collision_prob * self.cw_max * self.t_slot_s

    def airtime_s(self, mcs: McsScheme, payload_bytes: int = 200) -> float:
        """Time on air for one frame: preamble + (payload + MAC) bits."""
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        bits = (payload_bytes + self.mac_overhead_bytes) * 8
        return self.preamble_s + bits / mcs.data_rate_bps

    def channel_access_time_s(
        self, num_vehicles: int, mcs: McsScheme, payload_bytes: int = 200
    ) -> float:
        """Eq. 5: time for ``num_vehicles`` to each get one frame through.

        Each vehicle pays DIFS + its worst-case backoff + airtime.
        """
        if num_vehicles < 1:
            raise ValueError("need at least one vehicle")
        per_vehicle = self.backoff_s + self.difs_s + self.airtime_s(
            mcs, payload_bytes
        )
        return num_vehicles * per_vehicle

    def supports_update_rate(
        self,
        num_vehicles: int,
        rate_hz: float,
        mcs: McsScheme,
        payload_bytes: int = 200,
    ) -> bool:
        """Can all vehicles send at ``rate_hz`` without queue build-up?

        The paper's criterion: all packets must clear the medium before
        the next update is generated (100 ms at 10 Hz).
        """
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        access = self.channel_access_time_s(num_vehicles, mcs, payload_bytes)
        return access <= 1.0 / rate_hz

    def max_vehicles(
        self, deadline_s: float, mcs: McsScheme, payload_bytes: int = 200
    ) -> int:
        """Largest vehicle count whose access time fits ``deadline_s``."""
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        per_vehicle = self.backoff_s + self.difs_s + self.airtime_s(
            mcs, payload_bytes
        )
        return int(deadline_s / per_vehicle)


class DsrcChannel:
    """Discrete-event shared DSRC medium.

    Transmissions serialize (CSMA/CA: one sender at a time).  Each
    transmission pays DIFS + a uniform random backoff + airtime; if the
    medium is busy the sender defers until it frees.  Per-transmission
    latency therefore grows with the instantaneous offered load,
    reproducing the gentle Tx-latency growth of Fig. 6a.

    Parameters
    ----------
    sim:
        Simulation kernel.
    mcs:
        Modulation/coding for airtime.
    mac:
        Analytic parameters (slot, SIFS, cw).
    rng:
        Random stream for backoff draws.
    """

    def __init__(
        self,
        sim,
        mcs: McsScheme = PAPER_MCS_8,
        mac: Optional[DsrcMacModel] = None,
        rng: Optional[np.random.Generator] = None,
        loss_prob: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError(f"loss_prob must be in [0, 1): {loss_prob}")
        self.sim = sim
        self.mcs = mcs
        self.mac = mac or DsrcMacModel()
        self._rng = rng or np.random.default_rng(0)
        self.loss_prob = loss_prob
        self._busy_until = 0.0
        self.transmissions = 0
        self.bytes_transmitted = 0
        self.frames_lost = 0
        self.total_airtime_s = 0.0
        # Deferred (batched-dataplane) frames awaiting the next flush:
        # (effective_time, seq, payload_bytes, on_delivered, owner).
        self._pending: List[Tuple] = []
        self._pending_seq = 0
        self._airtime_cache: Dict[int, float] = {}

    def transmit(
        self,
        payload_bytes: int,
        on_delivered: Callable[[float], None],
    ) -> Optional[float]:
        """Schedule one frame; returns its delivery time.

        ``on_delivered(delivery_time)`` fires when the frame clears the
        medium.  Broadcast DSRC frames are unacknowledged: with
        ``loss_prob`` set, a lost frame still occupies the medium but
        never delivers, and the method returns ``None``.
        """
        now = self.sim.now
        # Contention window grows with collisions; at the paper's
        # p_c <= 0.03 most draws are from the minimum window (15 slots),
        # occasionally escalating toward cw_max.
        if self._rng.random() < self.mac.collision_prob:
            cw = self.mac.cw_max
        else:
            cw = 15
        backoff = float(self._rng.integers(0, cw + 1)) * self.mac.t_slot_s
        airtime = self.mac.airtime_s(self.mcs, payload_bytes)
        start = max(now, self._busy_until) + self.mac.difs_s + backoff
        delivery = start + airtime
        self._busy_until = delivery
        self.transmissions += 1
        self.bytes_transmitted += payload_bytes
        self.total_airtime_s += airtime
        if self.loss_prob > 0.0 and self._rng.random() < self.loss_prob:
            self.frames_lost += 1
            return None
        self.sim.at(delivery, lambda t=delivery: on_delivered(t), label="dsrc-delivery")
        return delivery

    # ------------------------------------------------------------------
    # Batched dataplane: deferred contention
    # ------------------------------------------------------------------
    @property
    def pending_frames(self) -> int:
        """Deferred frames whose contention has not been resolved yet."""
        return len(self._pending)

    def enqueue(
        self,
        eff_time: float,
        payload_bytes: int,
        on_delivered: Callable[[float], None],
        owner: object = None,
    ) -> None:
        """Defer one frame to the next :meth:`flush`.

        ``eff_time`` is the instant the frame reaches the medium — the
        send instant plus any shaper delay, i.e. the time a per-frame
        :meth:`transmit` call would have run.  ``owner`` tags the frame
        so a handover can move a sender's not-yet-effective frames to
        its new channel (:meth:`take_pending`).
        """
        self._pending.append(
            (eff_time, self._pending_seq, payload_bytes, on_delivered, owner)
        )
        self._pending_seq += 1

    def take_pending(self, owner: object) -> List[Tuple]:
        """Remove and return ``owner``'s deferred frames (handover)."""
        taken = [frame for frame in self._pending if frame[4] is owner]
        if taken:
            self._pending = [
                frame for frame in self._pending if frame[4] is not owner
            ]
        return taken

    def flush(self, now: float) -> int:
        """Resolve contention for every deferred frame effective by ``now``.

        One pass replaces per-frame :meth:`transmit` calls and their
        delivery events, bit-identically:

        - Frames are processed in ``(eff_time, seq)`` order — exactly
          the order their transmit events would have fired (the kernel
          dispatches by time, scheduling order breaking ties), so the
          backoff/collision/loss RNG draw sequence is unchanged.  With
          no shaper delays the queue is already in that order and the
          sort is a linear scan.
        - Per frame the draw sequence, float-op order, busy-medium
          serialization, and stats updates replicate :meth:`transmit`
          verbatim; airtimes are memoized per payload size (the
          computation is a pure function of it).
        - A frame delivered by ``now`` invokes ``on_delivered`` inline,
          in delivery order, with the same stamp its event would have
          carried; a frame still on the air gets a real delivery event.
        - Frames whose ``eff_time`` is still in the future (shaper
          delays) are carried to the next flush.  Nothing enqueued later
          can precede them — a future send happens after ``now`` — so
          carrying preserves the draw order exactly.

        Returns the number of frames resolved.
        """
        pending = self._pending
        if not pending:
            return 0
        pending.sort(key=itemgetter(0, 1))
        self._pending = []
        mac = self.mac
        rng = self._rng
        collision_prob = mac.collision_prob
        cw_max = mac.cw_max
        t_slot = mac.t_slot_s
        difs = mac.difs_s
        loss_prob = self.loss_prob
        airtimes = self._airtime_cache
        sim_at = self.sim.at
        busy = self._busy_until
        resolved = 0
        for eff_time, _seq, payload_bytes, on_delivered, _owner in pending:
            if eff_time > now:
                break
            resolved += 1
            if rng.random() < collision_prob:
                cw = cw_max
            else:
                cw = 15
            backoff = float(rng.integers(0, cw + 1)) * t_slot
            airtime = airtimes.get(payload_bytes)
            if airtime is None:
                airtime = airtimes[payload_bytes] = mac.airtime_s(
                    self.mcs, payload_bytes
                )
            start = max(eff_time, busy) + difs + backoff
            delivery = start + airtime
            busy = self._busy_until = delivery
            self.transmissions += 1
            self.bytes_transmitted += payload_bytes
            self.total_airtime_s += airtime
            if loss_prob > 0.0 and rng.random() < loss_prob:
                self.frames_lost += 1
                continue
            if delivery <= now:
                on_delivered(delivery)
            else:
                sim_at(
                    delivery,
                    lambda t=delivery, cb=on_delivered: cb(t),
                    label="dsrc-delivery",
                )
        if resolved < len(pending):
            # Carried frames go back in front of anything a delivery
            # callback might have enqueued meanwhile.
            self._pending = pending[resolved:] + self._pending
        return resolved

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` the medium spent transmitting."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.total_airtime_s / elapsed_s
