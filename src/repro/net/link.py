"""Point-to-point wired links for inter-RSU collaboration traffic.

RSUs "feature either a wired connection (coaxial or optical Ethernet)
for fast and reliable intercommunications, or cellular communication";
the testbed uses 1 Gb/s Ethernet.  A :class:`WiredLink` is a FIFO
store-and-forward pipe with propagation latency and serialization
delay.
"""

from __future__ import annotations

from typing import Callable, Optional


class WiredLink:
    """FIFO link with fixed latency and finite bandwidth.

    Parameters
    ----------
    sim:
        Simulation kernel.
    latency_s:
        One-way propagation + switching latency.
    bandwidth_bps:
        Serialization rate; the testbed's 1 Gb/s by default.
    """

    def __init__(
        self,
        sim,
        latency_s: float = 0.5e-3,
        bandwidth_bps: float = 1_000_000_000,
        name: str = "link",
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.name = name
        self._busy_until = 0.0
        self.up = True
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_dropped = 0

    def serialization_s(self, packet_bytes: int) -> float:
        return packet_bytes * 8.0 / self.bandwidth_bps

    # ------------------------------------------------------------------
    # Partition (fault injection)
    # ------------------------------------------------------------------
    def set_down(self) -> None:
        """Partition the link: sends drop until :meth:`set_up`."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def send(
        self, packet_bytes: int, on_delivered: Callable[[float], None]
    ) -> Optional[float]:
        """Queue one packet; returns (and schedules) its delivery time.

        On a partitioned link the packet is dropped (counted, no
        callback) and ``None`` is returned — there is no transport-
        level retransmission on this pipe; senders own their recovery.
        """
        if packet_bytes <= 0:
            raise ValueError(f"packet size must be positive: {packet_bytes}")
        if not self.up:
            self.packets_dropped += 1
            return None
        start = max(self.sim.now, self._busy_until)
        done_serializing = start + self.serialization_s(packet_bytes)
        self._busy_until = done_serializing
        delivery = done_serializing + self.latency_s
        self.bytes_sent += packet_bytes
        self.packets_sent += 1
        self.sim.at(
            delivery, lambda t=delivery: on_delivered(t), label=f"{self.name}-delivery"
        )
        return delivery
