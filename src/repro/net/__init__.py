"""Network substrate: DSRC channel, HTB shaping, wired inter-RSU links.

The paper's testbed emulates the DSRC medium with ``tc``/netem
hierarchical token buckets over Ethernet and backs its scalability
claims with the analytic CSMA/CA model of Eq. 5-6.  This package
implements both:

- :mod:`repro.net.dsrc` — the 802.11p MCS table, the analytic
  medium-access model (Eq. 5-6), and a discrete-event shared-channel
  simulation used by the latency experiments.
- :mod:`repro.net.htb` — hierarchical token bucket shaping (the
  ``tc htb`` analogue: 100 Kb/s assured per vehicle, 27 Mb/s shared
  ceiling).
- :mod:`repro.net.link` — point-to-point wired links for RSU-to-RSU
  collaboration traffic.
"""

from repro.net.cellular import (
    LTE_PROFILE,
    NR_5G_PROFILE,
    CellularLink,
    CellularProfile,
)
from repro.net.channels import (
    CONTROL_CHANNEL,
    SERVICE_CHANNELS,
    ChannelManager,
    ChannelPlan,
    RsuSite,
)
from repro.net.dsrc import (
    DSRC_BANDWIDTH_BPS,
    MCS_TABLE,
    PAPER_MCS_3,
    PAPER_MCS_8,
    DsrcChannel,
    DsrcMacModel,
    McsScheme,
)
from repro.net.htb import HtbClass, HtbShaper
from repro.net.link import WiredLink

__all__ = [
    "CONTROL_CHANNEL",
    "CellularLink",
    "CellularProfile",
    "ChannelManager",
    "ChannelPlan",
    "DSRC_BANDWIDTH_BPS",
    "DsrcChannel",
    "DsrcMacModel",
    "HtbClass",
    "HtbShaper",
    "LTE_PROFILE",
    "MCS_TABLE",
    "McsScheme",
    "NR_5G_PROFILE",
    "PAPER_MCS_3",
    "PAPER_MCS_8",
    "RsuSite",
    "SERVICE_CHANNELS",
    "WiredLink",
]
