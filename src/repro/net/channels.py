"""DSRC service-channel management (Sec. VII-B).

Dense RSU deployments overlap in radio range; the paper's "high-level
management scheme" changes the operating service channel (SCH) when
interference rises, so "more vehicles [are] served with lower
interference".  DSRC's 5.9 GHz band has one control channel (CCH 178)
and six service channels (SCH 172, 174, 176, 180, 182, 184).

:class:`ChannelManager` assigns SCHs to RSUs so that no two
interfering RSUs (within ``interference_range_m`` or explicitly
adjacent) share a channel when the palette allows — greedy graph
colouring in decreasing-degree order, the standard heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.coords import LatLon
from repro.geo.distance import haversine_m

#: The DSRC control channel (never assigned to data service).
CONTROL_CHANNEL = 178

#: The six DSRC service channels.
SERVICE_CHANNELS = (172, 174, 176, 180, 182, 184)


@dataclass
class RsuSite:
    """A candidate RSU location for channel planning."""

    name: str
    position: LatLon


@dataclass
class ChannelPlan:
    """Result of :meth:`ChannelManager.assign`."""

    assignment: Dict[str, int] = field(default_factory=dict)
    conflicts: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def n_channels_used(self) -> int:
        return len(set(self.assignment.values()))

    @property
    def conflict_free(self) -> bool:
        return not self.conflicts

    def channel_of(self, name: str) -> int:
        return self.assignment[name]


class ChannelManager:
    """Assign service channels to RSU sites.

    Parameters
    ----------
    interference_range_m:
        Two sites closer than this interfere and need distinct SCHs.
    channels:
        Channel palette; the DSRC SCH set by default.
    """

    def __init__(
        self,
        interference_range_m: float = 600.0,
        channels: Sequence[int] = SERVICE_CHANNELS,
    ) -> None:
        if interference_range_m <= 0:
            raise ValueError("interference range must be positive")
        if not channels:
            raise ValueError("need at least one channel")
        if CONTROL_CHANNEL in channels:
            raise ValueError(
                f"channel {CONTROL_CHANNEL} is the control channel and "
                f"cannot carry the data service"
            )
        self.interference_range_m = interference_range_m
        self.channels = tuple(channels)

    def interference_graph(
        self,
        sites: Sequence[RsuSite],
        extra_edges: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> Dict[str, set]:
        """Adjacency of mutually interfering sites."""
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise ValueError("site names must be unique")
        graph: Dict[str, set] = {name: set() for name in names}
        for i, a in enumerate(sites):
            for b in sites[i + 1 :]:
                distance = haversine_m(
                    a.position.lat, a.position.lon, b.position.lat, b.position.lon
                )
                if distance <= self.interference_range_m:
                    graph[a.name].add(b.name)
                    graph[b.name].add(a.name)
        for a, b in extra_edges or ():
            if a not in graph or b not in graph:
                raise KeyError(f"extra edge references unknown site: {(a, b)}")
            graph[a].add(b)
            graph[b].add(a)
        return graph

    def assign(
        self,
        sites: Sequence[RsuSite],
        extra_edges: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> ChannelPlan:
        """Greedy colouring, highest-degree first.

        When the palette runs out for a site (more mutually interfering
        neighbours than channels), the least-used neighbouring channel
        is reused and the residual conflict is reported in
        ``plan.conflicts`` — the case the paper resolves physically
        (smaller range, higher MCS).
        """
        graph = self.interference_graph(sites, extra_edges)
        order = sorted(graph, key=lambda n: (-len(graph[n]), n))
        plan = ChannelPlan()
        for name in order:
            taken = {
                plan.assignment[neighbor]
                for neighbor in graph[name]
                if neighbor in plan.assignment
            }
            free = [c for c in self.channels if c not in taken]
            if free:
                plan.assignment[name] = free[0]
                continue
            # Palette exhausted: reuse the channel least used among
            # neighbours and record the conflict.
            usage = {c: 0 for c in self.channels}
            for neighbor in graph[name]:
                if neighbor in plan.assignment:
                    usage[plan.assignment[neighbor]] += 1
            channel = min(self.channels, key=lambda c: (usage[c], c))
            plan.assignment[name] = channel
            for neighbor in graph[name]:
                if plan.assignment.get(neighbor) == channel:
                    plan.conflicts.append(tuple(sorted((name, neighbor))))
        return plan
