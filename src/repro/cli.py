"""Command-line interface: ``python -m repro <command>``.

One subcommand per workflow a downstream user needs:

- ``generate``  — synthesise a labelled dataset and write it to CSV;
- ``stats``     — Table III statistics of a dataset (CSV or fresh);
- ``profiles``  — the Fig. 2 speed-profile series;
- ``evaluate``  — the Fig. 7 / Table IV model comparison;
- ``mesoscopic``— the Fig. 8 trip-level stability analysis;
- ``testbed``   — the Fig. 6 latency/bandwidth scalability runs;
- ``deploy``    — Tables V-VI and Fig. 9 deployment planning;
- ``mac``       — Eq. 5-6 analytic medium-access times;
- ``city``      — the city-scale trip-churn workload with dynamic
  shard rebalancing.

The scenario-running subcommands (``parallel``, ``obs``,
``resilience``, ``city``) share one scenario parent parser
(``--seed`` / ``--shards``) and, together with ``bench``, one output
parent (``--out`` / ``--format``), so the flags mean the same thing
everywhere.  Legacy spellings (``parallel --workers``,
``obs --json``) still parse via :class:`_DeprecatedAlias` but warn on
stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.dataset.io import read_telemetry_csv, write_telemetry_csv
from repro.dataset.stats import compute_statistics


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import corridor_dataset

    dataset = corridor_dataset(
        n_cars=args.cars,
        trips_per_car=args.trips,
        seed=args.seed,
        erroneous_rate=args.erroneous_rate,
    )
    write_telemetry_csv(args.output, dataset.records)
    print(f"wrote {len(dataset.records)} labelled records to {args.output}")
    return 0


def _load_or_generate(args: argparse.Namespace):
    from repro.experiments.datasets import corridor_dataset

    if args.input:
        records = read_telemetry_csv(args.input)
        print(f"loaded {len(records)} records from {args.input}")
        from repro.dataset.generator import SyntheticDataset
        from repro.dataset.speed_profiles import SpeedProfileLibrary
        from repro.geo.network_builder import CityNetworkBuilder

        return SyntheticDataset(
            records=records,
            trips=[],
            network=CityNetworkBuilder(seed=args.seed).build_corridor(),
            profiles=SpeedProfileLibrary(),
        )
    return corridor_dataset(n_cars=args.cars, seed=args.seed)


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = _load_or_generate(args)
    print(compute_statistics(dataset.records).format_table())
    return 0


def _cmd_profiles(args: argparse.Namespace) -> int:
    from repro.experiments.profiles import fig2_speed_profiles

    dataset = _load_or_generate(args) if (args.input or args.empirical) else None
    result = fig2_speed_profiles(dataset.records if dataset else None)
    print(result.format_table())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.experiments.models import fig7_table4_comparison

    dataset = _load_or_generate(args)
    comparison = fig7_table4_comparison(dataset, seed=args.split_seed)
    print(comparison.format_fig7())
    print()
    print(comparison.format_table4())
    return 0


def _cmd_mesoscopic(args: argparse.Namespace) -> int:
    from repro.dataset.schema import AnomalyKind
    from repro.experiments.models import fig8_mesoscopic

    dataset = _load_or_generate(args)
    result = fig8_mesoscopic(
        dataset, seed=args.split_seed, anomaly=AnomalyKind(args.anomaly)
    )
    print(result.format_aggregate())
    print()
    print(result.format_timeline())
    return 0


def _cmd_testbed(args: argparse.Namespace) -> int:
    from repro.core.system import default_training_dataset
    from repro.experiments.latency import fig6a_latency_sweep, format_fig6a
    from repro.experiments.multirsu import fig6bd_corridor

    dataset = default_training_dataset(seed=11, n_cars=args.cars)
    if args.topology == "single":
        rows = fig6a_latency_sweep(
            tuple(args.vehicles), duration_s=args.duration, dataset=dataset
        )
        print(format_fig6a(rows))
    else:
        corridor = fig6bd_corridor(
            n_vehicles_per_rsu=args.vehicles[0],
            duration_s=args.duration,
            handover_fraction=args.handover_fraction,
            dataset=dataset,
        )
        print(corridor.format_table())
        print(f"mean end-to-end: {corridor.mean_e2e_ms:.1f} ms")
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.deploy import format_table_vi
    from repro.experiments.deployment import (
        build_city,
        city_scale_capacity,
        fig9_coverage,
        table5_placement,
        table6_infrastructure,
    )

    city = build_city(seed=args.seed, count_scale=args.scale)
    plan = table5_placement(network=city)
    print(plan.format_table())
    print(f"\ncity-scale capacity: {city_scale_capacity():,} vehicles\n")
    rows, _ = table6_infrastructure(network=city, count_scale=args.scale)
    print(format_table_vi(rows))
    report = fig9_coverage(network=city)
    print(f"\n{report.format_summary()}")
    return 0


def _cmd_mac(args: argparse.Namespace) -> int:
    from repro.experiments.mac import eq5_access_times, format_eq5

    rows = eq5_access_times(vehicle_counts=tuple(args.vehicles))
    print(format_eq5(rows))
    return 0


def _emit_report(args: argparse.Namespace, markdown: str, payload: dict) -> None:
    """Uniform ``--out`` / ``--format`` handling for report commands.

    ``--format`` selects the stdout rendering; ``--out`` additionally
    writes the JSON payload (machine consumers always get JSON,
    whatever the terminal shows).
    """
    import json as _json
    from pathlib import Path

    if getattr(args, "out", None):
        Path(args.out).write_text(
            _json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    if getattr(args, "format", "md") == "json":
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(markdown)


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.experiments.resilience import resilience_corridor
    from repro.faults.events import corridor_profiles

    if args.profile == "list":
        for name, prof in corridor_profiles(args.duration).items():
            kinds = ", ".join(type(e).__name__ for e in prof.events)
            print(f"{name:<14} {kinds}")
        return 0
    if args.shards != 1:
        print(
            "repro resilience: fault injection is single-process; "
            "--shards must be 1",
            file=sys.stderr,
        )
        return 2
    report = resilience_corridor(
        profile_name=args.profile,
        n_vehicles=args.vehicles,
        duration_s=args.duration,
        motorways=args.motorways,
        seed=args.seed,
    )
    _emit_report(args, report.format_report(), report.to_json())
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import parallel_corridor

    report = parallel_corridor(
        n_vehicles=args.vehicles,
        duration_s=args.duration,
        motorways=args.motorways,
        workers=args.shards,
        seed=args.seed,
        handover_fraction=args.handover_fraction,
        repeats=args.repeats,
    )
    _emit_report(args, report.format_report(), report.to_json())
    return 0 if report.warnings_identical else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.experiments.observability import (
        observability_corridor,
        write_report,
    )

    report = observability_corridor(
        n_vehicles=args.vehicles,
        duration_s=args.duration,
        motorways=args.motorways,
        seed=args.seed,
        profile_name=None if args.profile == "none" else args.profile,
        shards=args.shards,
    )
    write_report(report, json_path=args.out, prometheus_path=args.prom)
    if args.format == "json":
        import json as _json

        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.format_markdown())
    if report.invariants is not None and not report.invariants.ok:
        return 1
    return 0


def _cmd_city(args: argparse.Namespace) -> int:
    from repro.experiments.city import city_report

    report = city_report(
        seed=args.seed,
        shards=args.shards,
        duration_s=args.duration,
        count_scale=args.scale,
        rebalance_interval_ticks=args.rebalance_every,
        wave=args.wave,
        observability=args.observe,
        kernel=args.kernel,
        profile=args.profile_phases,
    )
    _emit_report(args, report.format_markdown(), report.to_json())
    return 0 if report.ok else 1


def _cmd_comm(args: argparse.Namespace) -> int:
    from repro.experiments.collab_budget import collab_budget_sweep

    if args.shards != 1:
        print(
            "repro comm: the comm-budget sweep audits live scenario "
            "objects and is single-process; --shards must be 1",
            file=sys.stderr,
        )
        return 2
    report = collab_budget_sweep(
        n_vehicles_per_rsu=args.vehicles,
        duration_s=args.duration,
        seed=args.seed,
        accuracy_budget_pp=args.accuracy_budget,
    )
    _emit_report(args, report.format_markdown(), report.to_dict())
    return 0 if report.audits_ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import FuzzConfig, FuzzRunner, replay_corpus_entry
    from repro.fuzz.runner import fuzz_dataset_warmup

    if args.replay:
        result = replay_corpus_entry(
            args.replay, update_digest=args.update_digests
        )
        lines = [f"### repro fuzz --replay `{result['path']}`", ""]
        lines.append(f"- expect: {result['expect']}")
        lines.append(f"- digest: `{result['digest'][:16]}…`")
        lines.append(f"- oracles: {', '.join(result['oracles_run'])}")
        if result["ok"]:
            lines.append("- result: **ok**")
        else:
            lines.append("- result: **mismatch**")
            lines.extend(f"  - {problem}" for problem in result["problems"])
        _emit_report(args, "\n".join(lines), result)
        return 0 if result["ok"] else 1

    from dataclasses import replace as _replace

    if args.smoke:
        config = FuzzConfig.smoke(seed=args.seed)
        if args.budget is not None:
            config = _replace(config, examples=args.budget)
        if args.time_budget is not None:
            config = _replace(config, time_budget_s=args.time_budget)
    else:
        config = FuzzConfig(
            seed=args.seed,
            examples=args.budget if args.budget is not None else 50,
            time_budget_s=args.time_budget,
        )
    if args.corpus_dir:
        config = _replace(config, corpus_dir=args.corpus_dir)
    fuzz_dataset_warmup()
    report = FuzzRunner(config).run()
    _emit_report(args, report.format_markdown(), report.to_dict())
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Markdown delta table: a fresh BENCH_*.json vs the committed
    baseline of the same bench id.

    The metric extractors live with the regression gate
    (``benchmarks/regression_check.py``) so the two can never drift;
    this command only renders their output, which also means it must
    run from a checkout (the benchmarks/ directory is not part of the
    installed package).
    """
    import json
    from pathlib import Path

    candidate_path = Path(args.candidate)
    root = None
    for base in (Path.cwd(), candidate_path.resolve().parent):
        for probe in (base, *base.parents):
            if (probe / "benchmarks" / "regression_check.py").exists():
                root = probe
                break
        if root is not None:
            break
    if root is None:
        print(
            "repro bench needs a repository checkout (benchmarks/"
            "regression_check.py not found above the cwd or the candidate)",
            file=sys.stderr,
        )
        return 2
    sys.path.insert(0, str(root))
    from benchmarks.regression_check import (
        MODE_AWARE_BENCHES,
        apply_aliases,
        extract_metrics,
        extract_wall_seconds,
        is_ratio_metric,
    )

    candidate = json.loads(candidate_path.read_text())
    bench = candidate.get("bench")
    mode = (
        candidate.get("mode", "full")
        if bench in MODE_AWARE_BENCHES
        else "full"
    )
    candidate_metrics = apply_aliases(extract_metrics(candidate, mode))
    candidate_walls = extract_wall_seconds(candidate)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / f"{bench}.json"
    )
    lines = [f"### {bench} delta ({candidate.get('mode', 'full')} candidate)\n"]
    payload = {
        "bench": bench,
        "mode": mode,
        "candidate": dict(candidate_metrics),
        "candidate_wall_s": dict(candidate_walls),
        "baseline": None,
        "baseline_wall_s": None,
    }
    if not baseline_path.exists():
        lines.append(f"No committed baseline at `{baseline_path.name}` — new "
                     "benchmark.\n")
        lines.append("| metric | candidate | kind |")
        lines.append("|---|---:|---|")
        for name, value in sorted(candidate_metrics.items()):
            kind = "ratio" if is_ratio_metric(name) else "absolute"
            lines.append(f"| {name} | {value:,.3f} | {kind} (no baseline) |")
        for name, value in sorted(candidate_walls.items()):
            lines.append(
                f"| {name} | {value:,.3f} | wall seconds (no baseline) |"
            )
        _emit_report(args, "\n".join(lines), payload)
        return 0
    baseline = json.loads(baseline_path.read_text())
    baseline_metrics = apply_aliases(extract_metrics(baseline, mode))
    baseline_walls = extract_wall_seconds(baseline)
    payload["baseline"] = dict(baseline_metrics)
    payload["baseline_wall_s"] = dict(baseline_walls)

    lines.append(f"Baseline: `{baseline_path.name}` "
                 f"({baseline.get('mode', 'full')} mode)\n")
    lines.append("| metric | candidate | baseline | delta | kind |")
    lines.append("|---|---:|---:|---:|---|")
    for name in sorted(set(candidate_metrics) | set(baseline_metrics)):
        kind = "ratio" if is_ratio_metric(name) else "absolute"
        cand = candidate_metrics.get(name)
        base = baseline_metrics.get(name)
        if cand is None:
            lines.append(f"| {name} | — | {base:,.3f} | missing | {kind} |")
            continue
        if base is None:
            lines.append(f"| {name} | {cand:,.3f} | — | new | {kind} |")
            continue
        delta = (cand - base) / base if base else float("nan")
        lines.append(
            f"| {name} | {cand:,.3f} | {base:,.3f} | {delta:+.1%} | {kind} |"
        )
    # Absolute wall clocks next to the ratios: what the speedups are
    # made of, never gated (host-dependent).
    for name in sorted(set(candidate_walls) | set(baseline_walls)):
        cand = candidate_walls.get(name)
        base = baseline_walls.get(name)
        if cand is None:
            lines.append(
                f"| {name} | — | {base:,.3f} s | missing | wall seconds |"
            )
            continue
        if base is None:
            lines.append(f"| {name} | {cand:,.3f} s | — | new | wall seconds |")
            continue
        delta = (cand - base) / base if base else float("nan")
        lines.append(
            f"| {name} | {cand:,.3f} s | {base:,.3f} s | {delta:+.1%} "
            f"| wall seconds |"
        )
    lines.append(
        "\nRatio metrics are same-host relative and gate the CI check; "
        "absolute throughputs and wall seconds are informational across "
        "hosts."
    )
    _emit_report(args, "\n".join(lines), payload)
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Run every paper experiment at reduced scale, in order."""
    from repro.core.system import default_training_dataset
    from repro.deploy import format_table_vi
    from repro.experiments.datasets import corridor_dataset
    from repro.experiments.deployment import (
        build_city,
        fig9_coverage,
        table5_placement,
        table6_infrastructure,
    )
    from repro.experiments.latency import fig6a_latency_sweep, format_fig6a
    from repro.experiments.mac import eq5_access_times, format_eq5
    from repro.experiments.models import fig7_table4_comparison, fig8_mesoscopic
    from repro.experiments.multirsu import fig6bd_corridor
    from repro.experiments.profiles import fig2_speed_profiles

    quick = args.quick
    banner = lambda title: print(f"\n{'=' * 8} {title} {'=' * 8}")

    banner("Fig. 2: speed profiles")
    print(fig2_speed_profiles().format_table())

    banner("Fig. 7 / Table IV / Fig. 8: model comparison")
    dataset = corridor_dataset(n_cars=120 if quick else 300)
    comparison = fig7_table4_comparison(dataset)
    print(comparison.format_fig7())
    print()
    print(comparison.format_table4())
    print()
    print(fig8_mesoscopic(dataset).format_aggregate())

    banner("Fig. 6a/6c: latency & bandwidth scalability")
    training = default_training_dataset(seed=11, n_cars=60)
    counts = (8, 64) if quick else (8, 16, 32, 64, 128, 256)
    print(format_fig6a(fig6a_latency_sweep(
        counts, duration_s=2.0 if quick else 5.0, dataset=training)))

    banner("Fig. 6b/6d: 5-RSU collaboration")
    corridor = fig6bd_corridor(
        n_vehicles_per_rsu=16 if quick else 128,
        duration_s=2.0 if quick else 5.0,
        dataset=training,
    )
    print(corridor.format_table())

    banner("Eq. 5-6: MAC access times")
    print(format_eq5(eq5_access_times()))

    banner("Tables V-VI / Fig. 9: deployment")
    city = build_city(seed=3, count_scale=0.1 if quick else 1.0)
    print(table5_placement(network=city).format_table())
    rows, _ = table6_infrastructure(
        network=city, count_scale=0.1 if quick else 1.0
    )
    print(format_table_vi(rows))
    print(fig9_coverage(network=city).format_summary())

    print("\nall experiments regenerated; see EXPERIMENTS.md for the "
          "paper-vs-measured comparison.")
    return 0


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--input", help="telemetry CSV to load instead of generating")
    parser.add_argument("--cars", type=int, default=300, help="cars to generate")
    parser.add_argument("--seed", type=int, default=1, help="generator seed")


class _DeprecatedAlias(argparse.Action):
    """A legacy flag spelling: warns on stderr, stores to the new dest.

    Registered with ``dest=<new flag's dest>`` so the handler code only
    ever sees the canonical name.  Each flag warns at most once per
    invocation — a repeated ``--workers 2 --workers 3`` still parses
    last-wins but doesn't repeat the nag.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        warned = getattr(namespace, "_deprecated_warned", None)
        if warned is None:
            warned = set()
            setattr(namespace, "_deprecated_warned", warned)
        if option_string not in warned:
            warned.add(option_string)
            canonical = "--" + self.dest.replace("_", "-")
            print(
                f"warning: {option_string} is deprecated; use {canonical}",
                file=sys.stderr,
            )
        setattr(namespace, self.dest, values)


def _scenario_parent() -> argparse.ArgumentParser:
    """Shared scenario flags: every runnable subcommand means the same
    thing by ``--seed`` and ``--shards``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=7, help="scenario seed")
    parent.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes (1 = single-process)",
    )
    return parent


def _output_parent() -> argparse.ArgumentParser:
    """Shared output flags: ``--format`` picks the stdout rendering,
    ``--out`` additionally writes the JSON report to a file."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--format", default="md", choices=["md", "json"], help="stdout format"
    )
    parent.add_argument(
        "--out", help="also write the JSON report to this path"
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAD3 (ICDCS 2021) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesise a dataset CSV")
    generate.add_argument("output", help="output CSV path")
    generate.add_argument("--cars", type=int, default=300)
    generate.add_argument("--trips", type=int, default=8)
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument("--erroneous-rate", type=float, default=0.0)
    generate.set_defaults(func=_cmd_generate)

    stats = commands.add_parser("stats", help="Table III dataset statistics")
    _add_dataset_args(stats)
    stats.set_defaults(func=_cmd_stats)

    profiles = commands.add_parser("profiles", help="Fig. 2 speed profiles")
    _add_dataset_args(profiles)
    profiles.add_argument(
        "--empirical",
        action="store_true",
        help="measure from generated data instead of the profile library",
    )
    profiles.set_defaults(func=_cmd_profiles)

    evaluate = commands.add_parser(
        "evaluate", help="Fig. 7 / Table IV model comparison"
    )
    _add_dataset_args(evaluate)
    evaluate.add_argument("--split-seed", type=int, default=0)
    evaluate.set_defaults(func=_cmd_evaluate)

    mesoscopic = commands.add_parser(
        "mesoscopic", help="Fig. 8 trip-level stability"
    )
    _add_dataset_args(mesoscopic)
    mesoscopic.add_argument("--split-seed", type=int, default=0)
    mesoscopic.add_argument(
        "--anomaly",
        default="slowing",
        choices=["slowing", "speeding", "sudden_acceleration"],
    )
    mesoscopic.set_defaults(func=_cmd_mesoscopic)

    testbed = commands.add_parser(
        "testbed", help="Fig. 6 latency/bandwidth scalability"
    )
    testbed.add_argument(
        "--topology", default="single", choices=["single", "corridor"]
    )
    testbed.add_argument(
        "--vehicles",
        type=int,
        nargs="+",
        default=[8, 64, 256],
        help="vehicle counts (single) or per-RSU count (corridor)",
    )
    testbed.add_argument("--duration", type=float, default=5.0)
    testbed.add_argument("--handover-fraction", type=float, default=0.25)
    testbed.add_argument("--cars", type=int, default=80)
    testbed.set_defaults(func=_cmd_testbed)

    deploy = commands.add_parser(
        "deploy", help="Tables V-VI and Fig. 9 deployment planning"
    )
    deploy.add_argument("--seed", type=int, default=3)
    deploy.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="city size scale (1.0 = the paper's Table V inventory)",
    )
    deploy.set_defaults(func=_cmd_deploy)

    mac = commands.add_parser("mac", help="Eq. 5-6 MAC access times")
    mac.add_argument(
        "--vehicles", type=int, nargs="+", default=[8, 64, 256, 400]
    )
    mac.set_defaults(func=_cmd_mac)

    scenario_parent = _scenario_parent()
    output_parent = _output_parent()

    resilience = commands.add_parser(
        "resilience",
        help="fault-injected corridor run (crash, kill, partition, loss)",
        parents=[scenario_parent, output_parent],
    )
    resilience.add_argument(
        "--profile",
        default="chaos",
        help="fault profile name, or 'list' to enumerate (default: chaos)",
    )
    resilience.add_argument(
        "--vehicles", type=int, default=16, help="vehicles per RSU"
    )
    resilience.add_argument(
        "--duration", type=float, default=6.0, help="simulated seconds"
    )
    resilience.add_argument(
        "--motorways", type=int, default=2, help="motorway RSUs in the corridor"
    )
    resilience.set_defaults(func=_cmd_resilience)

    parallel = commands.add_parser(
        "parallel",
        help="sharded multi-process corridor vs single-process (speedup "
        "+ bit-identical warnings)",
        parents=[scenario_parent, output_parent],
    )
    parallel.add_argument(
        "--vehicles", type=int, default=16, help="vehicles per RSU"
    )
    parallel.add_argument(
        "--duration", type=float, default=4.0, help="simulated seconds"
    )
    parallel.add_argument(
        "--motorways", type=int, default=8, help="motorway RSUs in the corridor"
    )
    parallel.add_argument(
        "--workers",
        type=int,
        dest="shards",
        action=_DeprecatedAlias,
        help=argparse.SUPPRESS,  # legacy spelling of --shards
    )
    parallel.add_argument(
        "--handover-fraction",
        type=float,
        default=0.25,
        help="fraction of each motorway's vehicles handed to the link RSU",
    )
    parallel.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timing repeats (noise-floored, see experiments.parallel)",
    )
    parallel.set_defaults(func=_cmd_parallel)

    obs = commands.add_parser(
        "obs",
        help="instrumented corridor run: metrics, spans, invariant audit",
        parents=[scenario_parent, output_parent],
    )
    obs.add_argument(
        "--vehicles", type=int, default=16, help="vehicles per RSU"
    )
    obs.add_argument(
        "--duration", type=float, default=5.0, help="simulated seconds"
    )
    obs.add_argument(
        "--motorways", type=int, default=2, help="motorway RSUs in the corridor"
    )
    obs.add_argument(
        "--profile",
        default="none",
        help="fault profile to inject (serial runs only; default: none)",
    )
    obs.add_argument(
        "--json",
        dest="out",
        action=_DeprecatedAlias,
        help=argparse.SUPPRESS,  # legacy spelling of --out
    )
    obs.add_argument(
        "--prom", help="also write Prometheus text exposition to this path"
    )
    obs.set_defaults(func=_cmd_obs)

    city = commands.add_parser(
        "city",
        help="city-scale trip churn over the Table V fleet, with dynamic "
        "shard rebalancing",
        parents=[scenario_parent, output_parent],
    )
    city.add_argument(
        "--duration",
        type=float,
        default=3600.0,
        help="simulated seconds (86400 = a full demand-wave day)",
    )
    city.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="city size scale (1.0 = the paper's Table V inventory)",
    )
    city.add_argument(
        "--rebalance-every",
        type=int,
        default=10,
        help="rebalance check interval in ticks (multi-shard runs)",
    )
    city.add_argument(
        "--wave",
        default="commute",
        choices=["commute", "flat"],
        help="hour-of-day demand wave",
    )
    city.add_argument(
        "--observe",
        action="store_true",
        help="collect metrics/span snapshots from the workers",
    )
    city.add_argument(
        "--kernel",
        default="fused",
        choices=["fused", "reference"],
        help="tick kernel: the arena-pooled fused kernel (default) or "
        "the per-RSU reference engine it is bit-identical to",
    )
    city.add_argument(
        "--profile",
        dest="profile_phases",
        action="store_true",
        help="per-phase tick-time breakdown (arrivals/churn/moves/"
        "detect/digest) from the repro.obs spans; implies --observe "
        "on multi-shard runs",
    )
    city.set_defaults(func=_cmd_city)

    comm = commands.add_parser(
        "comm",
        help="CO-DATA comm-budget frontier: bytes/frame vs link accuracy "
        "across gating thresholds",
        parents=[scenario_parent, output_parent],
    )
    comm.add_argument(
        "--vehicles", type=int, default=24, help="vehicles per RSU"
    )
    comm.add_argument(
        "--duration", type=float, default=12.0, help="simulated seconds"
    )
    comm.add_argument(
        "--accuracy-budget",
        type=float,
        default=0.5,
        help="knee accuracy budget in percentage points",
    )
    comm.set_defaults(func=_cmd_comm)

    bench = commands.add_parser(
        "bench",
        help="markdown delta table: fresh BENCH_*.json vs committed baseline",
        parents=[output_parent],
    )
    bench.add_argument("candidate", help="freshly produced BENCH_*.json")
    bench.add_argument(
        "--baseline",
        help="baseline artifact (default: repo-root <bench>.json)",
    )
    bench.set_defaults(func=_cmd_bench)

    fuzz = commands.add_parser(
        "fuzz",
        help="property-based scenario fuzzing under differential oracles",
        parents=[output_parent],
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="fuzzer base seed (default 0)"
    )
    fuzz.add_argument(
        "--budget",
        type=int,
        help="number of generated scenarios to run (default 50)",
    )
    fuzz.add_argument(
        "--time-budget",
        type=float,
        help="wall-clock budget in seconds (checked between chunks)",
    )
    fuzz.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke config: 30 scenarios, small corridor space",
    )
    fuzz.add_argument(
        "--corpus-dir",
        help="write shrunk failing repro specs to this directory",
    )
    fuzz.add_argument(
        "--replay",
        metavar="FILE",
        help="replay one corpus entry instead of fuzzing",
    )
    fuzz.add_argument(
        "--update-digests",
        action="store_true",
        help="with --replay: rewrite the entry's pinned digest",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    reproduce = commands.add_parser(
        "reproduce",
        help="regenerate every paper table/figure in one run",
    )
    reproduce.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale (seconds instead of minutes)",
    )
    reproduce.set_defaults(func=_cmd_reproduce)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
