"""Binary-classification metrics.

The paper reports accuracy and F1 (Fig. 7) and TP/FN *rates* (Table IV)
with the convention that **abnormal (class = 0) is the positive class**
— a false negative is an abnormal record classified normal, the
dangerous error the system is built to minimise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import EstimatorError


def _validate(y_true, y_pred):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise EstimatorError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise EstimatorError("cannot compute metrics on zero samples")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred, positive=0) -> np.ndarray:
    """2x2 matrix ``[[TP, FN], [FP, TN]]`` for the given positive class."""
    y_true, y_pred = _validate(y_true, y_pred)
    pos_true = y_true == positive
    pos_pred = y_pred == positive
    tp = int(np.sum(pos_true & pos_pred))
    fn = int(np.sum(pos_true & ~pos_pred))
    fp = int(np.sum(~pos_true & pos_pred))
    tn = int(np.sum(~pos_true & ~pos_pred))
    return np.array([[tp, fn], [fp, tn]])


def accuracy_score(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred, positive=0) -> float:
    matrix = confusion_matrix(y_true, y_pred, positive)
    tp, fp = matrix[0, 0], matrix[1, 0]
    return tp / (tp + fp) if (tp + fp) > 0 else 0.0


def recall_score(y_true, y_pred, positive=0) -> float:
    matrix = confusion_matrix(y_true, y_pred, positive)
    tp, fn = matrix[0, 0], matrix[0, 1]
    return tp / (tp + fn) if (tp + fn) > 0 else 0.0


def f1_score(y_true, y_pred, positive=0) -> float:
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class BinaryClassificationReport:
    """Everything Fig. 7 and Table IV report, for one model.

    ``tp_rate`` and ``fn_rate`` follow Table IV: fractions of **all**
    evaluated records that are true positives / false negatives (the
    table's percentages over 89 K records), not recall-style ratios.
    """

    accuracy: float
    precision: float
    recall: float
    f1: float
    tp: int
    fn: int
    fp: int
    tn: int

    @property
    def n_samples(self) -> int:
        return self.tp + self.fn + self.fp + self.tn

    @property
    def tp_rate(self) -> float:
        return self.tp / self.n_samples

    @property
    def fn_rate(self) -> float:
        return self.fn / self.n_samples

    def format_row(self, name: str) -> str:
        return (
            f"{name:<14} acc={self.accuracy:.4f} f1={self.f1:.4f} "
            f"TPrate={self.tp_rate:.1%} FNrate={self.fn_rate:.1%}"
        )


def evaluate_binary(y_true, y_pred, positive=0) -> BinaryClassificationReport:
    """Compute the full report with abnormal-positive convention."""
    matrix = confusion_matrix(y_true, y_pred, positive)
    return BinaryClassificationReport(
        accuracy=accuracy_score(y_true, y_pred),
        precision=precision_score(y_true, y_pred, positive),
        recall=recall_score(y_true, y_pred, positive),
        f1=f1_score(y_true, y_pred, positive),
        tp=int(matrix[0, 0]),
        fn=int(matrix[0, 1]),
        fp=int(matrix[1, 0]),
        tn=int(matrix[1, 1]),
    )
