"""Logistic regression (batch gradient descent).

The paper's future work: "we will implement complex anomaly detection
algorithms to operate within CAD3".  Logistic regression is the
natural first step up from Naive Bayes that *keeps the explainability
the paper insists on* — its coefficients are directly readable as
per-feature evidence weights.

Features are standardised internally (zero mean, unit variance) so the
unregularised optimum is reached quickly on the raw speed/accel/hour
scales.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import check_fitted, check_X, check_Xy


class LogisticRegression:
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size (on standardised features).
    n_iterations:
        Full-batch gradient steps.
    l2:
        Ridge penalty on the weights (not the intercept).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 300,
        l2: float = 1e-4,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_features_: int = 0
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_Xy(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError(
                f"logistic regression is binary; got {len(self.classes_)} "
                f"classes"
            )
        self.n_features_ = X.shape[1]
        # y mapped to {0, 1} by classes_ order.
        target = (y == self.classes_[1]).astype(float)

        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        Z = (X - self._mean) / self._scale

        weights = np.zeros(self.n_features_)
        bias = 0.0
        n = len(target)
        for _ in range(self.n_iterations):
            logits = Z @ weights + bias
            probs = 1.0 / (1.0 + np.exp(-logits))
            error = probs - target
            grad_w = Z.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self.coef_ = weights
        self.intercept_ = bias
        return self

    def _scores(self, X: np.ndarray) -> np.ndarray:
        Z = (X - self._mean) / self._scale
        return Z @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_X(X, self.n_features_)
        p1 = 1.0 / (1.0 + np.exp(-self._scores(X)))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_X(X, self.n_features_)
        return self.classes_[(self._scores(X) >= 0.0).astype(int)]

    def proba_of(self, X, cls) -> np.ndarray:
        check_fitted(self)
        matches = np.nonzero(self.classes_ == cls)[0]
        if len(matches) == 0:
            raise ValueError(f"class {cls!r} not seen during fit")
        return self.predict_proba(X)[:, matches[0]]

    def explain(self, feature_names=None) -> str:
        """Per-feature evidence weights (standardised scale)."""
        check_fitted(self)
        names = feature_names or [f"x{i}" for i in range(self.n_features_)]
        if len(names) != self.n_features_:
            raise ValueError(
                f"feature_names has {len(names)} entries for "
                f"{self.n_features_} features"
            )
        parts = [
            f"{name}: {weight:+.3f}"
            for name, weight in zip(names, self.coef_)
        ]
        return (
            f"P({self.classes_[1]!r}) = sigmoid({' '.join(parts)} "
            f"{self.intercept_:+.3f})"
        )

    def __repr__(self) -> str:
        state = "fitted" if self.coef_ is not None else "unfitted"
        return f"LogisticRegression({state}, n_iterations={self.n_iterations})"
