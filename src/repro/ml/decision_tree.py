"""CART decision-tree classifier (gini impurity).

The paper's CAD3 fusion stage: a Decision Tree over the feature vector
``[Hour, P_X, Class_NB]`` decides normal/abnormal at the collaborating
RSU (Sec. IV-D).  Explainability is a stated design goal ("human lives
are at stake ... explaining the algorithms' decisions is critical"), so
the implementation keeps an inspectable node structure and can render
the learned rules as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ml.base import check_fitted, check_X, check_Xy


@dataclass
class TreeNode:
    """One node of the fitted tree.

    Leaves have ``feature is None`` and carry the class distribution of
    the training samples that reached them.
    """

    n_samples: int
    class_counts: np.ndarray  # counts per class, in classes_ order
    depth: int
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    @property
    def proba(self) -> np.ndarray:
        return self.class_counts / self.class_counts.sum()


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    fractions = counts / total
    return float(1.0 - np.square(fractions).sum())


class DecisionTreeClassifier:
    """Binary-split CART with gini impurity.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; MLlib's default of 5 keeps the tree
        explainable and is what we use throughout.
    min_samples_split:
        Minimum samples in a node for it to be considered for a split.
    min_samples_leaf:
        Minimum samples on each side of an accepted split.
    max_thresholds:
        Candidate thresholds per feature per node (quantile bins); caps
        fit cost on large batches, mirroring MLlib's binned splits.
    """

    def __init__(
        self,
        max_depth: int = 5,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_thresholds: int = 32,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_thresholds < 1:
            raise ValueError("max_thresholds must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.classes_: Optional[np.ndarray] = None
        self.root_: Optional[TreeNode] = None
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        y_index = np.searchsorted(self.classes_, y)
        self.root_ = self._build(X, y_index, depth=0)
        return self

    def _class_counts(self, y_index: np.ndarray) -> np.ndarray:
        return np.bincount(y_index, minlength=len(self.classes_))

    def _build(self, X: np.ndarray, y_index: np.ndarray, depth: int) -> TreeNode:
        counts = self._class_counts(y_index)
        node = TreeNode(n_samples=len(y_index), class_counts=counts, depth=depth)
        if (
            depth >= self.max_depth
            or len(y_index) < self.min_samples_split
            or _gini(counts) == 0.0
        ):
            return node
        split = self._best_split(X, y_index, counts)
        if split is None:
            return node
        feature, threshold, mask = split
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y_index[mask], depth + 1)
        node.right = self._build(X[~mask], y_index[~mask], depth + 1)
        return node

    def _candidate_thresholds(self, values: np.ndarray) -> np.ndarray:
        unique = np.unique(values)
        if len(unique) <= 1:
            return np.empty(0)
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if len(midpoints) <= self.max_thresholds:
            return midpoints
        quantiles = np.linspace(0.0, 1.0, self.max_thresholds + 2)[1:-1]
        return np.unique(np.quantile(values, quantiles))

    def _best_split(
        self, X: np.ndarray, y_index: np.ndarray, parent_counts: np.ndarray
    ):
        parent_gini = _gini(parent_counts)
        total = len(y_index)
        best_gain = 1e-12
        best = None
        for feature in range(X.shape[1]):
            values = X[:, feature]
            for threshold in self._candidate_thresholds(values):
                mask = values <= threshold
                n_left = int(mask.sum())
                n_right = total - n_left
                if (
                    n_left < self.min_samples_leaf
                    or n_right < self.min_samples_leaf
                ):
                    continue
                left_counts = self._class_counts(y_index[mask])
                right_counts = parent_counts - left_counts
                weighted = (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / total
                gain = parent_gini - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), mask)
        return best

    # ------------------------------------------------------------------
    def _leaf_for(self, row: np.ndarray) -> TreeNode:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def _leaf_proba_matrix(self, X: np.ndarray) -> np.ndarray:
        """Vectorised routing: partition row indices down the tree.

        Equivalent to calling :meth:`_leaf_for` per row but O(depth)
        numpy passes instead of a Python loop per sample — the hot
        path when scoring paper-scale batches.
        """
        out = np.empty((len(X), len(self.classes_)))
        stack = [(self.root_, np.arange(len(X)))]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                out[indices] = node.proba
                continue
            mask = X[indices, node.feature] <= node.threshold
            stack.append((node.left, indices[mask]))
            stack.append((node.right, indices[~mask]))
        return out

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_X(X, self.n_features_)
        return self._leaf_proba_matrix(X)

    def predict(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_X(X, self.n_features_)
        proba = self._leaf_proba_matrix(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def proba_of(self, X, cls) -> np.ndarray:
        """Probability column for class ``cls`` (see NB counterpart)."""
        check_fitted(self)
        matches = np.nonzero(self.classes_ == cls)[0]
        if len(matches) == 0:
            raise ValueError(f"class {cls!r} not seen during fit")
        return self.predict_proba(X)[:, matches[0]]

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        check_fitted(self)

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return node.depth
            return max(walk(node.left), walk(node.right))

        return walk(self.root_)

    @property
    def n_leaves(self) -> int:
        check_fitted(self)

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)

    def export_text(self, feature_names: Optional[List[str]] = None) -> str:
        """Human-readable rules — the explainability the paper values."""
        check_fitted(self)
        names = feature_names or [f"x{i}" for i in range(self.n_features_)]
        if len(names) != self.n_features_:
            raise ValueError(
                f"feature_names has {len(names)} entries for "
                f"{self.n_features_} features"
            )
        lines: List[str] = []

        def walk(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                cls = self.classes_[int(np.argmax(node.class_counts))]
                lines.append(
                    f"{indent}predict {cls!r} "
                    f"(n={node.n_samples}, p={node.proba.max():.2f})"
                )
                return
            lines.append(f"{indent}if {names[node.feature]} <= {node.threshold:.4f}:")
            walk(node.left, indent + "  ")
            lines.append(f"{indent}else:")
            walk(node.right, indent + "  ")

        walk(self.root_, "")
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "fitted" if self.root_ is not None else "unfitted"
        return f"DecisionTreeClassifier({state}, max_depth={self.max_depth})"
