"""From-scratch ML substrate (the Spark MLlib substitute).

The paper deliberately uses two *lightweight, explainable* classifiers
from Spark MLlib: Gaussian Naive Bayes for per-road anomaly detection
and a Decision Tree for fusing collaborative context (Sec. VI-D).  This
package re-implements both on numpy, plus the metrics the evaluation
reports.

All estimators follow the same minimal contract:

- ``fit(X, y) -> self``
- ``predict(X) -> ndarray of class labels``
- ``predict_proba(X) -> (n, n_classes) ndarray`` with columns ordered
  by ``self.classes_``.
"""

from repro.ml.base import (
    Detector,
    EstimatorError,
    NotFittedError,
    as_detector,
    check_Xy,
    check_fitted,
)
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    BinaryClassificationReport,
    accuracy_score,
    confusion_matrix,
    evaluate_binary,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.naive_bayes import GaussianNaiveBayes

__all__ = [
    "BinaryClassificationReport",
    "DecisionTreeClassifier",
    "Detector",
    "EstimatorError",
    "GaussianNaiveBayes",
    "LogisticRegression",
    "NotFittedError",
    "RandomForestClassifier",
    "accuracy_score",
    "as_detector",
    "check_Xy",
    "check_fitted",
    "confusion_matrix",
    "evaluate_binary",
    "f1_score",
    "precision_score",
    "recall_score",
]
