"""Gaussian Naive Bayes.

The paper's AD3 detector: each RSU fits a Naive Bayes model on its
road type's data and classifies incoming records as normal/abnormal
(Sec. IV-C).  Features are continuous (speed, acceleration, hour), so
this is the Gaussian variant, matching Spark MLlib usage in the paper.

The model assumes feature independence given the class and a Gaussian
per (class, feature):

    p(y | x) ∝ p(y) * prod_j N(x_j; mu_{y,j}, sigma_{y,j}^2)

All arithmetic runs in log space for numerical stability.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import check_fitted, check_X, check_Xy


class GaussianNaiveBayes:
    """Gaussian Naive Bayes classifier.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every
        variance, guarding against zero-variance features (e.g. Hour in
        a single-hour training batch).
    priors:
        Optional fixed class priors (in ``classes_`` order); learned
        from class frequencies when omitted.
    """

    def __init__(
        self,
        var_smoothing: float = 1e-9,
        priors: Optional[np.ndarray] = None,
    ) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self.priors = None if priors is None else np.asarray(priors, dtype=float)
        self.classes_: Optional[np.ndarray] = None
        self.theta_: Optional[np.ndarray] = None  # (n_classes, n_features) means
        self.var_: Optional[np.ndarray] = None  # (n_classes, n_features) variances
        self.class_log_prior_: Optional[np.ndarray] = None
        self.n_features_: int = 0
        self._counts: Optional[np.ndarray] = None
        self._epsilon: float = 0.0

    def fit(self, X, y) -> "GaussianNaiveBayes":
        X, y = check_Xy(X, y)
        self.classes_, counts = np.unique(y, return_counts=True)
        if len(self.classes_) < 2:
            raise ValueError(
                "training data contains a single class; a classifier "
                "needs at least two"
            )
        n_classes = len(self.classes_)
        self.n_features_ = X.shape[1]
        self.theta_ = np.zeros((n_classes, self.n_features_))
        self.var_ = np.zeros((n_classes, self.n_features_))
        self._counts = counts.astype(float)
        for index, cls in enumerate(self.classes_):
            rows = X[y == cls]
            self.theta_[index] = rows.mean(axis=0)
            self.var_[index] = rows.var(axis=0)
        self._epsilon = self.var_smoothing * max(
            float(X.var(axis=0).max()), 1e-12
        )
        if self.priors is not None:
            if len(self.priors) != n_classes:
                raise ValueError(
                    f"priors has {len(self.priors)} entries for "
                    f"{n_classes} classes"
                )
            if not np.isclose(self.priors.sum(), 1.0):
                raise ValueError("priors must sum to 1")
            self.class_log_prior_ = np.log(self.priors)
        else:
            self.class_log_prior_ = np.log(counts / counts.sum())
        return self

    def partial_fit(self, X, y, classes=None) -> "GaussianNaiveBayes":
        """Incrementally update the model with a new batch.

        Gaussian NB is exactly incremental: per-(class, feature) mean
        and variance merge via Chan's parallel-variance formula, and
        priors follow the running class counts.  This is what lets an
        RSU keep "learning the normal behavior over time" (Sec. III-A)
        online instead of retraining from scratch.

        The first call must either see both classes or pass
        ``classes`` explicitly.
        """
        X, y = check_Xy(X, y)
        if self.classes_ is None:
            if classes is not None:
                self.classes_ = np.asarray(classes)
            else:
                self.classes_ = np.unique(y)
            if len(self.classes_) < 2:
                raise ValueError(
                    "first partial_fit needs both classes (or pass "
                    "classes= explicitly)"
                )
            n_classes = len(self.classes_)
            self.n_features_ = X.shape[1]
            self.theta_ = np.zeros((n_classes, self.n_features_))
            self.var_ = np.zeros((n_classes, self.n_features_))
            self._counts = np.zeros(n_classes)
        elif X.shape[1] != self.n_features_:
            raise ValueError(
                f"partial_fit with {X.shape[1]} features; model has "
                f"{self.n_features_}"
            )
        unknown = set(np.unique(y)) - set(self.classes_.tolist())
        if unknown:
            raise ValueError(f"unseen classes in partial_fit: {unknown}")

        for index, cls in enumerate(self.classes_):
            rows = X[y == cls]
            if len(rows) == 0:
                continue
            n_new = len(rows)
            n_old = self._counts[index]
            new_mean = rows.mean(axis=0)
            new_var = rows.var(axis=0)
            if n_old == 0:
                self.theta_[index] = new_mean
                self.var_[index] = new_var
            else:
                total = n_old + n_new
                delta = new_mean - self.theta_[index]
                merged_mean = self.theta_[index] + delta * n_new / total
                merged_var = (
                    n_old * self.var_[index]
                    + n_new * new_var
                    + n_old * n_new * delta**2 / total
                ) / total
                self.theta_[index] = merged_mean
                self.var_[index] = merged_var
            self._counts[index] = n_old + n_new
        if self.priors is not None:
            self.class_log_prior_ = np.log(self.priors)
        elif self._counts.sum() > 0 and np.all(self._counts > 0):
            self.class_log_prior_ = np.log(self._counts / self._counts.sum())
        # Refresh the smoothed-variance floor.
        self._epsilon = self.var_smoothing * max(float(self.var_.max()), 1e-12)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        # log N(x; mu, var) summed over features, plus log prior —
        # broadcast over classes in one shot: (n, 1, f) against (c, f)
        # yields (n, c, f), reduced over the (contiguous) feature axis.
        # Bit-identical to the per-class loop it replaced: the same
        # elementary operations run per (row, class, feature) and the
        # innermost reduction order is unchanged.
        smoothed = self.var_ + getattr(self, "_epsilon", 0.0)
        diff = X[:, None, :] - self.theta_
        log_pdf = -0.5 * (
            np.log(2.0 * np.pi * smoothed) + diff**2 / smoothed
        ).sum(axis=2)
        return self.class_log_prior_ + log_pdf

    def predict_log_proba(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_X(X, self.n_features_)
        jll = self._joint_log_likelihood(X)
        # log-softmax normalization
        max_jll = jll.max(axis=1, keepdims=True)
        log_norm = max_jll + np.log(
            np.exp(jll - max_jll).sum(axis=1, keepdims=True)
        )
        return jll - log_norm

    def predict_proba(self, X) -> np.ndarray:
        return np.exp(self.predict_log_proba(X))

    def predict(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_X(X, self.n_features_)
        jll = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(jll, axis=1)]

    def predict_and_proba(self, X, cls) -> "tuple":
        """(classes, P(cls)) from a single likelihood evaluation.

        ``predict(X)`` followed by ``proba_of(X, cls)`` computes the
        joint log-likelihood twice; the streaming hot path calls this
        instead.  Values are bit-identical to the two separate calls
        (same ``jll``, same argmax, same log-softmax).
        """
        check_fitted(self)
        X = check_X(X, self.n_features_)
        matches = np.nonzero(self.classes_ == cls)[0]
        if len(matches) == 0:
            raise ValueError(f"class {cls!r} not seen during fit")
        jll = self._joint_log_likelihood(X)
        classes = self.classes_[np.argmax(jll, axis=1)]
        max_jll = jll.max(axis=1, keepdims=True)
        log_norm = max_jll + np.log(
            np.exp(jll - max_jll).sum(axis=1, keepdims=True)
        )
        proba = np.exp(jll - log_norm)[:, matches[0]]
        return classes, proba

    def proba_of(self, X, cls) -> np.ndarray:
        """Posterior probability column for class ``cls``.

        CAD3's Eq. 1 fuses the NB probability of the *normal* class
        with the averaged history; this helper selects that column
        robustly against class ordering.
        """
        check_fitted(self)
        matches = np.nonzero(self.classes_ == cls)[0]
        if len(matches) == 0:
            raise ValueError(f"class {cls!r} not seen during fit")
        return self.predict_proba(X)[:, matches[0]]

    def __repr__(self) -> str:
        state = "fitted" if self.classes_ is not None else "unfitted"
        return f"GaussianNaiveBayes({state}, var_smoothing={self.var_smoothing})"
