"""Shared estimator plumbing: validation, fitted-state checks, and the
:class:`Detector` protocol every pipeline detector implements."""

from __future__ import annotations

import inspect
from typing import Any, Optional, Sequence, Tuple

import numpy as np


class EstimatorError(ValueError):
    """Invalid input to an estimator."""


class NotFittedError(RuntimeError):
    """An estimator method requiring ``fit`` was called before it."""


class Detector:
    """The uniform detection interface the RSU pipeline dispatches on.

    Every detector — standalone (AD3), collaborative (CAD3),
    centralized, online — exposes the same four methods, so callers
    never hand-switch on detector type or on ``RsuConfig.columnar``:

    - :meth:`detect` scores a record sequence, returning
      ``(classes, normal_probabilities)``; ``summaries`` carries the
      CO-DATA per-car histories and is ignored by detectors that do
      not collaborate.
    - :meth:`detect_block` is the columnar counterpart; the default
      materializes the block's records and delegates to
      :meth:`detect`, and vectorizing subclasses override it with a
      bit-identical fast path.
    - :meth:`observe` / :meth:`observe_block` let prequential
      detectors keep learning from what they just scored; the defaults
      are no-ops, so offline detectors need not define them.
    """

    def detect(
        self, records: Sequence[Any], summaries: Optional[Any] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(classes, normal probabilities) for a record sequence."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement detect()"
        )

    def detect_block(
        self, block: Any, summaries: Optional[Any] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar :meth:`detect`; the default round-trips through
        ``block.records()`` so every detector works on the block path."""
        return self.detect(block.records(), summaries)

    def observe(self, records: Sequence[Any]) -> None:
        """Fold scored records back into the model (no-op by default)."""

    def observe_block(self, block: Any) -> None:
        """Columnar :meth:`observe`.

        Materializing ``block.records()`` costs more than most batch
        detections, so only detectors that actually learn (an
        overridden :meth:`observe`) pay it.
        """
        if type(self).observe is Detector.observe:
            return
        self.observe(block.records())


class _DetectorAdapter(Detector):
    """Wraps a foreign bare-``detect`` object into the protocol.

    Attribute access falls through to the wrapped object, so fitted
    flags, models, and diagnostics stay reachable.
    """

    def __init__(self, obj: Any) -> None:
        self._obj = obj
        parameters = [
            p
            for p in inspect.signature(obj.detect).parameters.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
        ]
        self._pass_summaries = len(parameters) >= 2

    def detect(self, records, summaries=None):
        if self._pass_summaries:
            return self._obj.detect(records, summaries)
        return self._obj.detect(records)

    def detect_block(self, block, summaries=None):
        inner = getattr(self._obj, "detect_block", None)
        if inner is None:
            return self.detect(block.records(), summaries)
        if self._pass_summaries:
            return inner(block, summaries)
        return inner(block)

    def observe(self, records) -> None:
        inner = getattr(self._obj, "observe", None)
        if inner is not None:
            inner(records)

    def observe_block(self, block) -> None:
        inner = getattr(self._obj, "observe_block", None)
        if inner is not None:
            inner(block)
        elif callable(getattr(self._obj, "observe", None)):
            self._obj.observe(block.records())

    def __getattr__(self, name: str) -> Any:
        return getattr(self._obj, name)

    def __repr__(self) -> str:
        return f"as_detector({self._obj!r})"


def as_detector(obj: Any) -> Detector:
    """Coerce ``obj`` to the :class:`Detector` protocol.

    Protocol instances pass through untouched; anything else with a
    callable ``detect`` is wrapped so the pipeline can dispatch
    uniformly (the hook for user-supplied models).
    """
    if isinstance(obj, Detector):
        return obj
    if not callable(getattr(obj, "detect", None)):
        raise TypeError(
            f"{type(obj).__name__} is not a detector: it has no "
            f"callable detect() method"
        )
    return _DetectorAdapter(obj)


def check_Xy(X, y) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training pair to float/int arrays.

    Raises :class:`EstimatorError` on shape mismatches, empty data, or
    non-finite values — failing at fit time beats failing at predict
    time with a cryptic numpy warning.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise EstimatorError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise EstimatorError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise EstimatorError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    if X.shape[0] == 0:
        raise EstimatorError("cannot fit on zero samples")
    if not np.all(np.isfinite(X)):
        raise EstimatorError("X contains NaN or infinite values")
    return X, y


def check_X(X, n_features: int) -> np.ndarray:
    """Validate a prediction matrix against the fitted feature count."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise EstimatorError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[1] != n_features:
        raise EstimatorError(
            f"X has {X.shape[1]} features; estimator was fitted "
            f"with {n_features}"
        )
    if not np.all(np.isfinite(X)):
        raise EstimatorError("X contains NaN or infinite values")
    return X


def check_fitted(estimator, attribute: str = "classes_") -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` is set."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before calling "
            f"this method"
        )
