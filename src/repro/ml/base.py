"""Shared estimator plumbing: validation and fitted-state checks."""

from __future__ import annotations

from typing import Tuple

import numpy as np


class EstimatorError(ValueError):
    """Invalid input to an estimator."""


class NotFittedError(RuntimeError):
    """An estimator method requiring ``fit`` was called before it."""


def check_Xy(X, y) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training pair to float/int arrays.

    Raises :class:`EstimatorError` on shape mismatches, empty data, or
    non-finite values — failing at fit time beats failing at predict
    time with a cryptic numpy warning.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise EstimatorError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise EstimatorError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise EstimatorError(
            f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
        )
    if X.shape[0] == 0:
        raise EstimatorError("cannot fit on zero samples")
    if not np.all(np.isfinite(X)):
        raise EstimatorError("X contains NaN or infinite values")
    return X, y


def check_X(X, n_features: int) -> np.ndarray:
    """Validate a prediction matrix against the fitted feature count."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise EstimatorError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[1] != n_features:
        raise EstimatorError(
            f"X has {X.shape[1]} features; estimator was fitted "
            f"with {n_features}"
        )
    if not np.all(np.isfinite(X)):
        raise EstimatorError("X contains NaN or infinite values")
    return X


def check_fitted(estimator, attribute: str = "classes_") -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` is set."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before calling "
            f"this method"
        )
