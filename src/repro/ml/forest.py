"""Random forest: bagged CART trees.

The heavier end of the paper's future-work spectrum ("more complex
anomaly detection algorithms"), used by the ablation benches to
quantify what CAD3 would gain — and what explainability it would lose
— by moving past the NB + single-DT design.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import check_fitted, check_X, check_Xy
from repro.ml.decision_tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with feature subsampling.

    Parameters
    ----------
    n_trees:
        Ensemble size.
    max_depth, min_samples_leaf, max_thresholds:
        Passed to each :class:`DecisionTreeClassifier`.
    max_features:
        Features sampled per tree ("sqrt" or an int); trees see a
        random feature subset, decorrelating the ensemble.
    seed:
        Seed for bootstrap and feature sampling.
    """

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_thresholds: int = 16,
        max_features="sqrt",
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.max_features = max_features
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self.trees_: list = []
        self.feature_subsets_: list = []
        self.n_features_: int = 0

    def _n_subfeatures(self, n_features: int) -> int:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        count = int(self.max_features)
        if not 1 <= count <= n_features:
            raise ValueError(
                f"max_features={count} out of range for {n_features} features"
            )
        return count

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        n_sub = self._n_subfeatures(self.n_features_)
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        self.feature_subsets_ = []
        n = len(y)
        for _ in range(self.n_trees):
            rows = rng.integers(0, n, n)  # bootstrap sample
            features = np.sort(
                rng.choice(self.n_features_, size=n_sub, replace=False)
            )
            sample_y = y[rows]
            if len(np.unique(sample_y)) < 2:
                # Degenerate bootstrap: skip (prediction falls back to
                # the rest of the ensemble).
                continue
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_thresholds=self.max_thresholds,
            )
            tree.fit(X[np.ix_(rows, features)], sample_y)
            self.trees_.append(tree)
            self.feature_subsets_.append(features)
        if not self.trees_:
            raise ValueError("all bootstrap samples were single-class")
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self)
        X = check_X(X, self.n_features_)
        total = np.zeros((len(X), len(self.classes_)))
        for tree, features in zip(self.trees_, self.feature_subsets_):
            proba = tree.predict_proba(X[:, features])
            # Map tree-local class columns onto the forest's classes.
            for column, cls in enumerate(tree.classes_):
                target = int(np.searchsorted(self.classes_, cls))
                total[:, target] += proba[:, column]
        return total / len(self.trees_)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def proba_of(self, X, cls) -> np.ndarray:
        check_fitted(self)
        matches = np.nonzero(self.classes_ == cls)[0]
        if len(matches) == 0:
            raise ValueError(f"class {cls!r} not seen during fit")
        return self.predict_proba(X)[:, matches[0]]

    def __repr__(self) -> str:
        state = "fitted" if self.trees_ else "unfitted"
        return f"RandomForestClassifier({state}, n_trees={self.n_trees})"
