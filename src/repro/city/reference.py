"""Reference city tick kernel: the PR 7 per-RSU object engine.

This is the ground-truth implementation of the city tick — one
``RsuState`` object per RSU, each owning its own growing numpy arrays,
ticked in a Python-level loop.  The fused arena kernel
(``repro.city.kernel``) must produce bit-identical rolling digests; the
differential tests and the fuzz oracle compare the two, the same
pattern as ``simkernel/reference.py`` for the event queue.

Select it with ``CitySpec(kernel="reference")``.  It stays the simplest
possible statement of the tick semantics — change it only when the
*semantics* change, never for speed.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.city.model import CitySpec
from repro.city.topology import CityTopology
from repro.simkernel.rng import RngRegistry, substream_name

#: Vehicle ids are ``spawning_rsu_index * ID_STRIDE + per-RSU counter``,
#: so an id names its origin and never collides city-wide.
ID_STRIDE = 10**8

TICK_DIGEST = struct.Struct("<qq")

#: One tick's vehicle moves as five parallel arrays:
#: (dst rsu index, src rsu index, vehicle id, trip end, residence end).
MoveBundle = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def rsu_stream_name(rsu_name: str) -> str:
    """The RNG stream an RSU draws from, spelled once for all engines."""
    return substream_name("city", rsu_name)


# ----------------------------------------------------------------------
# Per-RSU state
# ----------------------------------------------------------------------
class RsuState:
    """One RSU's resident vehicles, counters, and warning digest.

    Columnar: ids / trip-end / residence-end are parallel numpy arrays,
    so a tick is a handful of vectorized draws and masks no matter how
    many vehicles are resident.
    """

    __slots__ = (
        "index",
        "name",
        "neighbours",
        "arrival_rate_s",
        "ids",
        "depart",
        "leave",
        "spawned",
        "retired",
        "warnings",
        "digest",
    )

    def __init__(self, index: int, name: str, neighbours, arrival_rate_s: float):
        self.index = index
        self.name = name
        self.neighbours = np.asarray(neighbours, dtype=np.int64)
        self.arrival_rate_s = arrival_rate_s
        self.ids = np.empty(0, dtype=np.int64)
        self.depart = np.empty(0, dtype=np.float64)
        self.leave = np.empty(0, dtype=np.float64)
        self.spawned = 0
        self.retired = 0
        self.warnings = 0
        #: Rolling SHA-256 over (tick, count, sorted flagged ids) —
        #: stored as bytes (not a hashlib object) so it pickles across a
        #: rebalance.
        self.digest = b""

    def admit(self, ids: np.ndarray, depart: np.ndarray, leave: np.ndarray) -> None:
        self.ids = np.concatenate([self.ids, ids])
        self.depart = np.concatenate([self.depart, depart])
        self.leave = np.concatenate([self.leave, leave])

    def tick(
        self,
        tick_index: int,
        now: float,
        spec: CitySpec,
        wave: float,
        rng: np.random.Generator,
        moves_out: List[MoveBundle],
    ) -> int:
        """Advance one tick; returns the post-tick resident count.

        The draw order — poisson; (trip, residence) for arrivals;
        (residence, neighbour) for movers; (binomial, choice) for
        detection — is fixed and every conditional draw's size is a
        deterministic function of prior state, which is what makes the
        sequence shard-invariant.
        """
        ids, depart, leave = self.ids, self.depart, self.leave

        lam = self.arrival_rate_s * spec.tick_s * wave
        k = int(rng.poisson(lam)) if lam > 0.0 else 0
        if k:
            trip = rng.exponential(spec.mean_trip_s, k)
            stay = rng.exponential(spec.mean_residence_s, k)
            base = self.index * ID_STRIDE + self.spawned
            new_ids = np.arange(base, base + k, dtype=np.int64)
            self.spawned += k
            ids = np.concatenate([ids, new_ids])
            depart = np.concatenate([depart, now + trip])
            leave = np.concatenate([leave, now + stay])

        due = leave <= now
        if due.any():
            finished = due & (depart <= now)
            mover = due & ~finished
            self.retired += int(np.count_nonzero(finished))
            m = int(np.count_nonzero(mover))
            drop = due
            if m:
                stay2 = rng.exponential(spec.mean_residence_s, m)
                if self.neighbours.size:
                    pick = rng.integers(0, self.neighbours.size, m)
                    moves_out.append(
                        (
                            self.neighbours[pick],
                            np.full(m, self.index, dtype=np.int64),
                            ids[mover],
                            depart[mover],
                            now + stay2,
                        )
                    )
                else:
                    # Isolated RSU: stay put with a fresh residence.
                    leave = leave.copy()
                    leave[mover] = now + stay2
                    drop = finished
            keep = ~drop
            ids, depart, leave = ids[keep], depart[keep], leave[keep]
        self.ids, self.depart, self.leave = ids, depart, leave

        n = ids.size
        if n and spec.abnormal_prob > 0.0:
            flagged = int(rng.binomial(n, spec.abnormal_prob))
            if flagged:
                chosen = rng.choice(n, size=flagged, replace=False)
                flagged_ids = np.sort(ids[chosen])
                self.warnings += flagged
                self.digest = hashlib.sha256(
                    self.digest
                    + TICK_DIGEST.pack(tick_index, flagged)
                    + flagged_ids.tobytes()
                ).digest()
        return int(n)

    # -- rebalance serialization --------------------------------------
    def pack(self) -> dict:
        return {
            "index": self.index,
            "ids": self.ids,
            "depart": self.depart,
            "leave": self.leave,
            "spawned": self.spawned,
            "retired": self.retired,
            "warnings": self.warnings,
            "digest": self.digest,
        }

    def unpack(self, state: dict) -> None:
        self.ids = state["ids"]
        self.depart = state["depart"]
        self.leave = state["leave"]
        self.spawned = state["spawned"]
        self.retired = state["retired"]
        self.warnings = state["warnings"]
        self.digest = state["digest"]


# ----------------------------------------------------------------------
# Per-process compute core
# ----------------------------------------------------------------------
class ShardState:
    """The RSUs one process owns, plus their RNG streams.

    Used directly by the serial engine (owning every RSU) and by each
    city shard worker (owning its slice).  Ownership changes only via
    :meth:`detach` / :meth:`adopt`, which the sharded protocol invokes
    strictly between ticks.
    """

    kernel_name = "reference"

    def __init__(
        self, spec: CitySpec, topology: CityTopology, owned: Iterable[int]
    ) -> None:
        self.spec = spec
        self.topology = topology
        self.registry = RngRegistry(spec.seed)
        self.base_rate_s = spec.arrivals_per_rsu_hour / 3600.0
        self.rsus: Dict[int, RsuState] = {}
        self.moves_applied = 0
        for index in owned:
            self.rsus[index] = self._fresh(index)
        self._rebuild_order()

    def _rebuild_order(self) -> None:
        # Tick order and the load-index vector are functions of the
        # owned set only; rebuild on ownership changes, not every tick.
        # The array's *identity* doubles as a cheap "ownership unchanged"
        # token for the worker's window accumulator.
        self._order = sorted(self.rsus)
        self._indices = np.asarray(self._order, dtype=np.int64)

    def _fresh(self, index: int) -> RsuState:
        rsu = self.topology.rsus[index]
        return RsuState(
            index,
            rsu.name,
            rsu.neighbours,
            self.base_rate_s * rsu.arrival_weight,
        )

    def _rng(self, index: int) -> np.random.Generator:
        return self.registry.stream(rsu_stream_name(self.topology.rsus[index].name))

    # -- the tick ------------------------------------------------------
    def apply_moves(self, bundles: List[MoveBundle]) -> None:
        if not bundles:
            return
        dst = np.concatenate([b[0] for b in bundles])
        src = np.concatenate([b[1] for b in bundles])
        ids = np.concatenate([b[2] for b in bundles])
        depart = np.concatenate([b[3] for b in bundles])
        leave = np.concatenate([b[4] for b in bundles])
        # Stable: equal (dst, src) rows keep bundle order, and any
        # (dst, src) pair occurs in exactly one bundle per tick.
        order = np.lexsort((src, dst))
        dst, ids, depart, leave = dst[order], ids[order], depart[order], leave[order]
        boundaries = np.flatnonzero(np.diff(dst)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [dst.size]])
        for lo, hi in zip(starts, ends):
            self.rsus[int(dst[lo])].admit(ids[lo:hi], depart[lo:hi], leave[lo:hi])
        self.moves_applied += int(dst.size)

    def tick(
        self, tick_index: int, now: float, inbound: List[MoveBundle]
    ) -> Tuple[List[MoveBundle], Tuple[np.ndarray, np.ndarray]]:
        """Advance every owned RSU; returns ``(moves, (indices, counts))``.

        Loads travel as a pair of parallel int64 arrays (global RSU
        index, post-tick resident count) rather than a dict — they cross
        a Pipe every tick and feed a vectorized accumulate engine-side.
        """
        self.apply_moves(inbound)
        wave = self.spec.demand_wave.multiplier(now)
        moves_out: List[MoveBundle] = []
        counts = np.empty(len(self._order), dtype=np.int64)
        for j, index in enumerate(self._order):
            state = self.rsus[index]
            counts[j] = state.tick(
                tick_index, now, self.spec, wave, self._rng(index), moves_out
            )
        return moves_out, (self._indices, counts)

    # -- rebalance -----------------------------------------------------
    def detach(self, index: int) -> dict:
        state = self.rsus.pop(index)
        packed = state.pack()
        packed["rng"] = self.registry.state_of(rsu_stream_name(state.name))
        self._rebuild_order()
        return packed

    def adopt(self, packed: dict) -> None:
        index = packed["index"]
        state = self._fresh(index)
        state.unpack(packed)
        self.rsus[index] = state
        self.registry.restore(rsu_stream_name(state.name), packed["rng"])
        self._rebuild_order()

    # -- end-of-run accounting ----------------------------------------
    def rsu_results(self) -> Dict[str, dict]:
        return {
            state.name: {
                "digest": state.digest.hex(),
                "warnings": state.warnings,
                "spawned": state.spawned,
                "retired": state.retired,
                "active": int(state.ids.size),
            }
            for state in self.rsus.values()
        }
