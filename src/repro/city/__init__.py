"""City-scale workload: trip churn over the synthetic Shenzhen fleet.

The mesoscopic counterpart to the microscopic corridor testbed — see
``repro.city.engine`` for the execution model and the determinism
argument that pins shards=N bit-identical to shards=1.
"""

from repro.city.arena import SegmentArena
from repro.city.engine import (
    CityEngine,
    CityResult,
    FusedShardState,
    RsuState,
    ShardState,
    build_shard_state,
    run_city,
)
from repro.city.model import COMMUTE_WAVE, FLAT_WAVE, CitySpec, DemandWave
from repro.city.topology import CityRsu, CityTopology, build_city_topology

__all__ = [
    "COMMUTE_WAVE",
    "FLAT_WAVE",
    "CityEngine",
    "CityResult",
    "CityRsu",
    "CitySpec",
    "CityTopology",
    "DemandWave",
    "FusedShardState",
    "RsuState",
    "SegmentArena",
    "ShardState",
    "build_shard_state",
    "build_city_topology",
    "run_city",
]
