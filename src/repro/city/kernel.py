"""Fused city tick kernel: cross-RSU batched ticks over a segment arena.

Same semantics as ``repro.city.reference`` — every rolling SHA-256
digest chain is bit-identical — but the deterministic array work of a
tick (admission, due masks, finished/mover split, keep-compaction, move
routing) runs as pooled operations over one :class:`SegmentArena` per
shard instead of a Python loop over per-RSU arrays.

Why fusing is digest-safe
-------------------------
Every random draw an RSU makes comes from its own named stream
(``city.<rsu>``), so draws for different RSUs commute: the fused kernel
may batch *deterministic* work across RSUs in any order as long as each
stream's internal draw order (poisson → trip → stay → stay2 → pick →
binomial → choice) is preserved — which the three short per-RSU loops
below do, iterating owned RSUs in the same sorted order as the
reference.  What *cannot* be reordered is element order within one
RSU's arrays (the detection ``choice`` indexes array positions), so the
keep-compaction scatter is stable and admits append in the reference's
``(dst, src)`` lexsort order.  The fused kernel also emits one
concatenated move bundle per tick instead of one per RSU; the receiving
side's stable lexsort makes the two framings indistinguishable.

The per-phase breakdown (``CitySpec(profile=True)``) wraps the five
phases in ``repro.obs`` spans: ``city.arrivals``, ``city.churn``,
``city.moves``, ``city.detect``, ``city.digest``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.city.arena import (
    DEAD_DEPART,
    DEAD_LEAVE,
    MIN_SEGMENT,
    SegmentArena,
    segment_ranges,
)
from repro.city.model import CitySpec
from repro.city.reference import (
    ID_STRIDE,
    TICK_DIGEST,
    MoveBundle,
    rsu_stream_name,
)
from repro.city.topology import CityTopology
from repro.obs.trace import span
from repro.simkernel.rng import RngRegistry


#: Masks for splitting raw PCG64 outputs into the 32-bit halves that
#: numpy's bounded-integer sampler actually consumes (low half first).
_U32 = np.uint64(0xFFFFFFFF)
_SH32 = np.uint64(32)
_PCG_PERIOD = 1 << 128


class _PickStream:
    """Bit-exact fast path for ``rng.integers(0, n, m)`` on PCG64.

    ``Generator.integers`` pays ~5us of Python-level plumbing (two
    ``np.prod`` round trips inside the Cython wrapper) per call, which
    the mover loop pays once per RSU per tick — the single largest cost
    in the fused tick.  This class reproduces the identical draw
    straight from ``BitGenerator.random_raw``: numpy samples bounded
    integers below 2**32 with Lemire multiply-shift rejection over
    *buffered 32-bit halves* of the raw uint64 stream (low half first,
    ``out = (half * n) >> 32``, retry while ``(half * n) & 0xffffffff``
    is under ``(2**32 - n) % n``).  The one piece of state
    ``random_raw`` cannot see — the buffered odd half — is kept as a
    shadow here and pushed back into the bit generator (``sync_out``)
    before anything else reads it: a real ``Generator.choice`` call or
    a state snapshot for a rebalance handover.  Draw-for-draw
    equivalence is pinned by the kernel tests; any bit generator other
    than PCG64 falls back to ``Generator.integers`` itself.
    """

    __slots__ = (
        "gen",
        "bg",
        "raw",
        "n",
        "n64",
        "thr",
        "thr_i",
        "has",
        "half",
        "fast",
    )

    def __init__(self, gen: np.random.Generator, n: int) -> None:
        self.gen = gen
        self.bg = gen.bit_generator
        self.raw = self.bg.random_raw
        self.n = int(n)
        self.has = False
        self.half = 0
        self.fast = (
            isinstance(self.bg, np.random.PCG64) and 1 < self.n <= 0xFFFFFFFF
        )
        if self.fast:
            self.n64 = np.uint64(self.n)
            self.thr_i = ((1 << 32) - self.n) % self.n
            self.thr = np.uint64(self.thr_i)
            self.sync_in()

    # -- shadow buffer <-> bit generator ------------------------------
    def sync_in(self) -> None:
        """Pull a buffered half out of the bit generator (invariant:
        between syncs the generator's own buffer flag stays clear, so
        the hot path never reads the state dict)."""
        state = self.bg.state
        if state["has_uint32"]:
            self.has = True
            self.half = int(state["uinteger"])
            state["has_uint32"] = 0
            self.bg.state = state
        else:
            self.has = False

    def sync_out(self) -> None:
        """Push the shadow half back before a real consumer — a
        ``Generator.choice`` call or a ``state_of`` snapshot."""
        if self.has:
            state = self.bg.state
            state["has_uint32"] = 1
            state["uinteger"] = self.half
            self.bg.state = state
            self.has = False

    # -- the draw -----------------------------------------------------
    def draw_into(self, dest: np.ndarray, a: int, b: int) -> None:
        """Write ``integers(0, n, b - a)`` into ``dest[a:b]``."""
        m = b - a
        if not self.fast:
            if self.n == 1:
                dest[a:b] = 0
                return
            dest[a:b] = self.gen.integers(0, self.n, m)
            return
        n = self.n
        thr_i = self.thr_i
        pre = 1 if self.has else 0
        if pre and (self.half * n) & 0xFFFFFFFF < thr_i:
            self._draw_slow(dest, a, b, None)
            return
        need = m - pre
        if need <= 0:
            # A single pick served entirely by the buffered half.
            dest[a] = (self.half * n) >> 32
            self.has = False
            return
        if need <= 2:
            # One raw serves the whole draw: plain-int arithmetic beats
            # a chain of tiny-array ufuncs at this size (most mover
            # windows are this small).
            r = int(self.raw())
            p1 = (r & 0xFFFFFFFF) * n
            p2 = (r >> 32) * n
            if (p1 & 0xFFFFFFFF) < thr_i or (
                need == 2 and (p2 & 0xFFFFFFFF) < thr_i
            ):
                self._draw_slow(dest, a, b, np.array([r], dtype=np.uint64))
                return
            if pre:
                dest[a] = (self.half * n) >> 32
            dest[a + pre] = p1 >> 32
            if need == 2:
                dest[a + pre + 1] = p2 >> 32
                self.has = False
            else:
                self.has = True
                self.half = r >> 32
            return
        nraws = (need + 1) >> 1
        raw = self.raw(nraws)
        lo = raw & _U32
        hi = raw >> _SH32
        n_lo = (need + 1) >> 1
        n_hi = need >> 1
        n64 = self.n64
        plo = lo * n64
        phi = hi * n64
        if thr_i:
            thr = self.thr
            if ((plo & _U32) < thr)[:n_lo].any() or (
                n_hi and ((phi & _U32) < thr)[:n_hi].any()
            ):
                self._draw_slow(dest, a, b, raw)
                return
        if pre:
            dest[a] = (self.half * n) >> 32
        dest[a + pre : b : 2] = (plo >> _SH32)[:n_lo]
        if n_hi:
            dest[a + pre + 1 : b : 2] = (phi >> _SH32)[:n_hi]
        if need & 1:
            self.has = True
            self.half = int(hi[nraws - 1])
        else:
            self.has = False

    def _draw_slow(self, dest, a, b, raw) -> None:
        """Sequential walk for the (astronomically rare) Lemire
        rejection: consume halves one by one, drawing more raws as
        needed, then rewind whole unconsumed raws via ``advance`` and
        shadow a trailing odd half."""
        halves: List[int] = [self.half] if self.has else []
        pre = len(halves)
        drawn = 0
        if raw is not None:
            drawn = len(raw)
            for r in raw.tolist():
                halves.append(r & 0xFFFFFFFF)
                halves.append(r >> 32)
        n = self.n
        thr = self.thr_i
        out: List[int] = []
        i = 0
        m = b - a
        while len(out) < m:
            while i >= len(halves):
                extra = self.raw(4)
                drawn += 4
                for r in extra.tolist():
                    halves.append(r & 0xFFFFFFFF)
                    halves.append(r >> 32)
            h = halves[i]
            i += 1
            prod = h * n
            if prod & 0xFFFFFFFF >= thr:
                out.append(prod >> 32)
        dest[a:b] = out
        # i halves consumed out of pre + 2*drawn available.
        consumed_raw_halves = i - pre
        back = drawn - ((consumed_raw_halves + 1) >> 1)
        if back:
            self.bg.advance(_PCG_PERIOD - back)
        if consumed_raw_halves & 1:
            self.has = True
            self.half = halves[pre + consumed_raw_halves]
        else:
            self.has = False


class RsuCell:
    """One RSU's scalar state; its vehicle rows live in the arena."""

    __slots__ = (
        "index",
        "name",
        "neighbours",
        "arrival_rate_s",
        "handle",
        "spawned",
        "retired",
        "warnings",
        "digest",
    )

    def __init__(
        self, index: int, name: str, neighbours, arrival_rate_s: float, handle: int
    ):
        self.index = index
        self.name = name
        self.neighbours = np.asarray(neighbours, dtype=np.int64)
        self.arrival_rate_s = arrival_rate_s
        self.handle = handle
        self.spawned = 0
        self.retired = 0
        self.warnings = 0
        self.digest = b""


class FusedShardState:
    """Arena-pooled drop-in for the reference ``ShardState``.

    Same interface (``tick`` / ``apply_moves`` / ``detach`` / ``adopt``
    / ``rsu_results``), same pack dict schema on the wire — a
    FRAME_RSU_STATE produced by one kernel adopts cleanly into the
    other.
    """

    kernel_name = "fused"

    def __init__(
        self, spec: CitySpec, topology: CityTopology, owned: Iterable[int]
    ) -> None:
        self.spec = spec
        self.topology = topology
        self.registry = RngRegistry(spec.seed)
        self.base_rate_s = spec.arrivals_per_rsu_hour / 3600.0
        self.moves_applied = 0
        owned = sorted(owned)
        # Size the pool near Little's-law steady state so the ramp-up
        # does a handful of doublings, not hundreds.
        expected = sum(
            self.base_rate_s * topology.rsus[i].arrival_weight for i in owned
        ) * spec.mean_trip_s * spec.demand_wave.peak
        self.arena = SegmentArena(int(expected * 1.25) + MIN_SEGMENT * len(owned))
        #: Global RSU index -> arena handle for RSUs we own, else -1.
        self._handle_of = np.full(len(topology), -1, dtype=np.int64)
        self.rsus: Dict[int, RsuCell] = {}
        self._picks: Dict[int, _PickStream] = {}
        for index in owned:
            self.rsus[index] = self._fresh(index)
        self._rebuild_order()

    def _fresh(self, index: int) -> RsuCell:
        rsu = self.topology.rsus[index]
        cell = RsuCell(
            index,
            rsu.name,
            rsu.neighbours,
            self.base_rate_s * rsu.arrival_weight,
            self.arena.alloc(),
        )
        self._handle_of[index] = cell.handle
        return cell

    def _rebuild_order(self) -> None:
        # Same identity-token contract as the reference: `_indices` is
        # rebuilt only on ownership changes, so the worker's window
        # accumulator can key on object identity.
        self._order = sorted(self.rsus)
        self._indices = np.asarray(self._order, dtype=np.int64)
        self._cells = [
            (
                self.rsus[index],
                self.registry.stream(rsu_stream_name(self.rsus[index].name)),
            )
            for index in self._order
        ]
        # Per-phase views of the same cells with the bound RNG methods
        # cached: the three per-RSU loops run every tick, and attribute
        # lookups on Generator plus numpy-scalar indexing are a large
        # fraction of their cost at city scale.
        self._arr_cells = [
            (cell, cell.arrival_rate_s, rng.poisson, rng.standard_exponential)
            for cell, rng in self._cells
        ]
        # The neighbour-pick streams carry a shadow buffer half across
        # rebuilds, so they persist per RSU for the stream's lifetime
        # (detach drops them after syncing the shadow back).
        for cell, rng in self._cells:
            pick = self._picks.get(cell.index)
            if pick is None or pick.gen is not rng:
                self._picks[cell.index] = _PickStream(
                    rng, int(cell.neighbours.size)
                )
        # ``standard_exponential`` with ``out=`` writes the raw draws
        # straight into the shared stay buffer; the scale factor is a
        # deferred elementwise multiply (bitwise-equal to
        # ``exponential(scale, k)``, which is itself raw * scale).
        self._mv_cells = [
            (
                rng.standard_exponential,
                self._picks[cell.index].draw_into,
                int(cell.neighbours.size),
            )
            for cell, rng in self._cells
        ]
        self._det_cells = []
        for cell, rng in self._cells:
            pick = self._picks[cell.index]
            self._det_cells.append(
                (cell, rng.binomial, rng.choice, pick if pick.fast else None)
            )
        self._handles = np.asarray(
            [self.rsus[index].handle for index in self._order], dtype=np.int64
        )
        self._handles_list = self._handles.tolist()
        # Flattened neighbour table: mover destinations resolve with one
        # fused gather instead of one fancy-index per RSU per tick.
        offsets = np.zeros(len(self._order), dtype=np.int64)
        flat: List[np.ndarray] = []
        cursor = 0
        for j, index in enumerate(self._order):
            nbrs = self.rsus[index].neighbours
            offsets[j] = cursor
            if nbrs.size:
                flat.append(nbrs)
                cursor += nbrs.size
        self._nbr_off = offsets
        self._nbr_flat = (
            np.concatenate(flat) if flat else np.empty(0, dtype=np.int64)
        )

    # -- the tick ------------------------------------------------------
    def apply_moves(self, bundles: List[MoveBundle]) -> None:
        if not bundles:
            return
        arena = self.arena
        if len(bundles) == 1:
            dst, src, ids, depart, leave = bundles[0]
        else:
            dst = np.concatenate([b[0] for b in bundles])
            src = np.concatenate([b[1] for b in bundles])
            ids = np.concatenate([b[2] for b in bundles])
            depart = np.concatenate([b[3] for b in bundles])
            leave = np.concatenate([b[4] for b in bundles])
        # Same stable (dst, src) lexsort as the reference: it fixes the
        # admit order regardless of bundle framing or arrival order.
        order = np.lexsort((src, dst))
        dst, ids, depart, leave = dst[order], ids[order], depart[order], leave[order]
        boundaries = np.flatnonzero(np.diff(dst)) + 1
        group_starts = np.concatenate(([0], boundaries))
        group_counts = np.diff(np.concatenate((group_starts, [dst.size])))
        handles = self._handle_of[dst[group_starts]]
        # Grow only the segments that need it, then scatter all admits
        # into segment tails in one fused pass.
        short = np.flatnonzero(
            arena.cap[handles] - arena.length[handles] < group_counts
        )
        for g in short:
            arena.reserve(int(handles[g]), int(group_counts[g]))
        off = arena.off[handles]
        length = arena.length[handles]
        tails = segment_ranges(off + length, group_counts)
        arena.ids[tails] = ids
        arena.depart[tails] = depart
        arena.leave[tails] = leave
        arena.length[handles] = length + group_counts
        arena.live[handles] += group_counts
        self.moves_applied += int(dst.size)

    def tick(
        self, tick_index: int, now: float, inbound: List[MoveBundle]
    ) -> Tuple[List[MoveBundle], Tuple[np.ndarray, np.ndarray]]:
        spec = self.spec
        arena = self.arena
        cells = self._cells
        n_owned = len(cells)

        with span("city.moves"):
            self.apply_moves(inbound)

        # Phase 1 — arrivals.  Per-RSU draws stay in a loop (each RSU's
        # stream must advance poisson → trip → stay), but the append is
        # one fused scatter across all segments.
        with span("city.arrivals"):
            wave = spec.demand_wave.multiplier(now)
            new_draws: List[np.ndarray] = []
            arr_js: List[int] = []
            arr_ks: List[int] = []
            arr_bases: List[int] = []
            tick_lam = spec.tick_s * wave
            mean_trip = spec.mean_trip_s
            mean_stay = spec.mean_residence_s
            # One standard_exponential(2k) replaces the reference's
            # exponential(trip, k) + exponential(stay, k): the Generator
            # applies the scale per-sample after the same ziggurat draw,
            # so splitting and scaling afterwards consumes the identical
            # raw stream and produces bit-identical doubles (scalar
            # multiplication commutes elementwise, so the scale is
            # deferred to one fused pass over all arriving RSUs).
            for j, (cell, rate_s, poisson, std_exp) in enumerate(
                self._arr_cells
            ):
                lam = rate_s * tick_lam
                k = int(poisson(lam)) if lam > 0.0 else 0
                if k:
                    new_draws.append(std_exp(2 * k))
                    arr_js.append(j)
                    arr_ks.append(k)
                    arr_bases.append(cell.index * ID_STRIDE + cell.spawned)
                    cell.spawned += k
            if new_draws:
                ks = np.asarray(arr_ks, dtype=np.int64)
                handles = self._handles[arr_js]
                short = np.flatnonzero(
                    arena.cap[handles] - arena.length[handles] < ks
                )
                for g in short:
                    arena.reserve(int(handles[g]), int(ks[g]))
                off = arena.off[handles]
                length = arena.length[handles]
                tails = segment_ranges(off + length, ks)
                # ids are per-RSU arithmetic sequences — the same
                # repeat+arange trick that builds the tail positions
                # builds them without one arange per RSU.
                arena.ids[tails] = segment_ranges(
                    np.asarray(arr_bases, dtype=np.int64), ks
                )
                # Each RSU's 2k draws lie [trip rows | stay rows] in the
                # concatenated draw pool; gather each half by range.
                pool = np.concatenate(new_draws)
                starts = np.zeros(ks.size, dtype=np.int64)
                np.cumsum(2 * ks[:-1], out=starts[1:])
                arena.depart[tails] = now + mean_trip * pool[
                    segment_ranges(starts, ks)
                ]
                arena.leave[tails] = now + mean_stay * pool[
                    segment_ranges(starts + ks, ks)
                ]
                arena.length[handles] = length + ks
                arena.live[handles] += ks

        # Phase 2 — churn masks.  The dead-slot sentinels (leave = +inf,
        # depart = -inf, see the arena docstring) make `leave <= now`
        # over the allocated pool prefix *exactly* the due set: one
        # contiguous SIMD compare, no per-row index gather — holes are
        # never due.  Per-RSU counts fall out of binary searches of the
        # (sorted) due positions against the segment bounds, and only
        # the ~few percent of rows that are actually due are ever
        # gathered.
        with span("city.churn"):
            handles = self._handles
            off = arena.off[handles]
            length = arena.length[handles]
            ends = off + length
            hw = arena.high_water
            due_idx = np.flatnonzero(arena.leave[:hw] <= now)
            any_due = due_idx.size > 0
            if any_due:
                d_lo = np.searchsorted(due_idx, off)
                d_hi = np.searchsorted(due_idx, ends)
                n_due = d_hi - d_lo
                fin_sub = np.take(arena.depart, due_idx) <= now
                # One running count of finished rows turns the per-RSU
                # due windows into finished/mover windows without four
                # more binary searches: a due row at position i is the
                # fin_csum[i]-th finished (or i - fin_csum[i]-th mover).
                fin_csum = np.zeros(due_idx.size + 1, dtype=np.int64)
                np.cumsum(fin_sub, out=fin_csum[1:])
                n_fin = fin_csum[d_hi] - fin_csum[d_lo]
                # Movers stay grouped by segment (ascending position),
                # so per-RSU mover slices are index windows too.
                mover_idx = due_idx[~fin_sub]
                m_lo = d_lo - fin_csum[d_lo]
                m_hi = d_hi - fin_csum[d_hi]

        # Phase 3 — movers.  Residence/neighbour draws stay per-RSU (in
        # order), writing into one concatenated bundle; the reference
        # emits one bundle per RSU, but the receiver's stable (dst, src)
        # lexsort makes the framings equivalent.
        moves_out: List[MoveBundle] = []
        if any_due:
            with span("city.moves"):
                n_mv0 = m_hi - m_lo
                total_movers = mover_idx.size
                mv_stay = np.empty(total_movers, dtype=np.float64)
                mv_pick = np.empty(total_movers, dtype=np.int64)
                n_mv = n_mv0
                mean_stay = spec.mean_residence_s
                isolated = False
                iso_js: List[int] = []
                iso_spans: List[Tuple[int, int]] = []
                # Iterate segments in *offset* order: the per-segment
                # mover windows [m_lo, m_hi) then tile the mover array
                # contiguously, so the bundle inherits mover_idx as its
                # position column with no per-segment copy.  Stream
                # draws commute across RSUs, so the iteration order is
                # free; each stream still draws stay2 → pick in order.
                mlo_l = m_lo.tolist()
                mhi_l = m_hi.tolist()
                by_off = np.argsort(off, kind="stable")
                mv_cells = self._mv_cells
                # Mover-less segments draw nothing, so skipping them
                # up front leaves every stream's draw order untouched.
                for j in by_off[n_mv0[by_off] > 0].tolist():
                    lo = mlo_l[j]
                    hi = mhi_l[j]
                    rexp, draw, nbr_n = mv_cells[j]
                    if nbr_n:
                        rexp(out=mv_stay[lo:hi])
                        draw(mv_pick, lo, hi)
                    else:
                        # Isolated RSU: movers stay put with a fresh
                        # residence and are not dropped.
                        stay2 = rexp(hi - lo)
                        pos = mover_idx[lo:hi]
                        arena.leave[pos] = now + stay2 * mean_stay
                        iso_js.append(j)
                        iso_spans.append((lo, hi))
                        n_due[j] = n_fin[j]
                        if n_mv is n_mv0:
                            n_mv = n_mv0.copy()
                        n_mv[j] = 0
                        isolated = True
                if isolated:
                    emigrate = np.ones(total_movers, dtype=bool)
                    for lo, hi in iso_spans:
                        emigrate[lo:hi] = False
                    mv_pos = mover_idx[emigrate]
                    mv_stay, mv_pick = mv_stay[emigrate], mv_pick[emigrate]
                else:
                    mv_pos = mover_idx
                if mv_pos.size:
                    n_mv_o = n_mv[by_off]
                    mv_dst = self._nbr_flat[
                        np.repeat(self._nbr_off[by_off], n_mv_o) + mv_pick
                    ]
                    moves_out.append(
                        (
                            mv_dst,
                            np.repeat(self._indices[by_off], n_mv_o),
                            np.take(arena.ids, mv_pos),
                            np.take(arena.depart, mv_pos),
                            now + mv_stay * mean_stay,
                        )
                    )

            # Phase 4 — retire in place.  Dropped rows become *holes*:
            # one small scatter stamps the sentinels over the ~0.5% of
            # rows that are due, instead of sliding every survivor left
            # (O(dropped) per tick, not O(resident)).  Stamping never
            # reorders, so per-segment row order — which the detection
            # digests index into — is untouched; a segment is physically
            # re-packed only once its holes outgrow its live rows.
            with span("city.churn"):
                for j, nf in enumerate(n_fin.tolist()):
                    if nf:
                        cells[j][0].retired += nf
                if isolated:
                    # Stayers got a fresh residence and are kept; drop
                    # only the finished rows of isolated segments.
                    drop_sub = np.ones(due_idx.size, dtype=bool)
                    for j in iso_js:
                        window = slice(int(d_lo[j]), int(d_hi[j]))
                        drop_sub[window] = fin_sub[window]
                    drop_idx = due_idx[drop_sub]
                else:
                    drop_idx = due_idx
                arena.leave[drop_idx] = DEAD_LEAVE
                arena.depart[drop_idx] = DEAD_DEPART
                new_live = arena.live[handles] - n_due
                arena.live[handles] = new_live
                # Re-pack a segment only once holes outnumber live rows
                # 2:1 — each re-pack copies ~live rows, so the threshold
                # sets the amortized copy volume per retired row.
                fragged = np.flatnonzero(
                    length - new_live > np.maximum(MIN_SEGMENT, 2 * new_live)
                )
                for j in fragged:
                    arena.compact_segment(int(handles[j]))
                counts = new_live
        else:
            counts = arena.live[handles].copy()

        # Phase 5 — detection draws per RSU (binomial → choice), then
        # the digest folds in a separate pass (no draws, so splitting
        # the phases is free) for a clean profile breakdown.
        pending: List[Tuple[RsuCell, int, np.ndarray]] = []
        if spec.abnormal_prob > 0.0:
            with span("city.detect"):
                p = spec.abnormal_prob
                det_cells = self._det_cells
                off_l = off.tolist()
                for j, n in enumerate(counts.tolist()):
                    if not n:
                        continue
                    cell, binomial, choice, pick = det_cells[j]
                    flagged = binomial(n, p)
                    if flagged:
                        flagged = int(flagged)
                        # `chosen` indexes *logical* (live-row) positions;
                        # with holes present, translate via a scan of
                        # this one segment's small window.
                        if pick is not None:
                            # `choice` consumes buffered 32-bit halves;
                            # hand the shadow buffer back first, then
                            # reclaim whatever half it leaves behind.
                            pick.sync_out()
                            chosen = choice(n, size=flagged, replace=False)
                            pick.sync_in()
                        else:
                            chosen = choice(n, size=flagged, replace=False)
                        lo = off_l[j]
                        phys = int(arena.length[self._handles_list[j]])
                        if phys == n:
                            sel = arena.ids[lo + chosen]
                        else:
                            live_pos = np.flatnonzero(
                                arena.leave[lo : lo + phys] != DEAD_LEAVE
                            )
                            sel = arena.ids[lo + live_pos[chosen]]
                        pending.append((cell, flagged, np.sort(sel)))
        if pending:
            with span("city.digest"):
                for cell, flagged, flagged_ids in pending:
                    cell.warnings += flagged
                    cell.digest = hashlib.sha256(
                        cell.digest
                        + TICK_DIGEST.pack(tick_index, flagged)
                        + flagged_ids.tobytes()
                    ).digest()
        return moves_out, (self._indices, counts)

    # -- rebalance -----------------------------------------------------
    def detach(self, index: int) -> dict:
        cell = self.rsus.pop(index)
        pick = self._picks.pop(index, None)
        if pick is not None:
            # Flush the shadow half-word into the bit generator so the
            # packed RNG state round-trips bit-identically.
            pick.sync_out()
        ids, depart, leave = self.arena.extract(cell.handle)
        packed = {
            "index": cell.index,
            "ids": ids,
            "depart": depart,
            "leave": leave,
            "spawned": cell.spawned,
            "retired": cell.retired,
            "warnings": cell.warnings,
            "digest": cell.digest,
            "rng": self.registry.state_of(rsu_stream_name(cell.name)),
        }
        self.arena.free(cell.handle)
        self._handle_of[index] = -1
        self._rebuild_order()
        return packed

    def adopt(self, packed: dict) -> None:
        index = packed["index"]
        rsu = self.topology.rsus[index]
        handle = self.arena.alloc(len(packed["ids"]))
        cell = RsuCell(
            index,
            rsu.name,
            rsu.neighbours,
            self.base_rate_s * rsu.arrival_weight,
            handle,
        )
        self.arena.append(handle, packed["ids"], packed["depart"], packed["leave"])
        cell.spawned = packed["spawned"]
        cell.retired = packed["retired"]
        cell.warnings = packed["warnings"]
        cell.digest = packed["digest"]
        self._handle_of[index] = handle
        self.rsus[index] = cell
        self.registry.restore(rsu_stream_name(cell.name), packed["rng"])
        self._rebuild_order()

    # -- end-of-run accounting ----------------------------------------
    def rsu_results(self) -> Dict[str, dict]:
        return {
            cell.name: {
                "digest": cell.digest.hex(),
                "warnings": cell.warnings,
                "spawned": cell.spawned,
                "retired": cell.retired,
                "active": int(self.arena.live[cell.handle]),
            }
            for cell in self.rsus.values()
        }


def build_shard_state(spec: CitySpec, topology: CityTopology, owned: Iterable[int]):
    """Kernel dispatch: the one place ``CitySpec.kernel`` is read."""
    if spec.kernel == "reference":
        from repro.city.reference import ShardState

        return ShardState(spec, topology, owned)
    return FusedShardState(spec, topology, owned)
