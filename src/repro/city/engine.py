"""City-scale churn engine: trip arrivals, migrations, rebalancing.

Execution model
---------------
Time advances in fixed mesoscopic ticks (default 60 s).  Each tick, per
RSU, in a fixed order and from that RSU's own named RNG stream:

1. **Admission** — vehicle moves produced by the *previous* tick are
   applied, globally ordered by a stable ``(destination, source)``
   lexsort.
2. **Arrivals** — a Poisson draw sized by the RSU's demand weight and
   the hour-of-day multiplier; each new vehicle gets an exponential
   total trip duration and an exponential residence under this RSU.
3. **Expiry** — vehicles whose residence ends either retire (trip over)
   or migrate to a uniformly drawn neighbour with a fresh residence.
4. **Detection** — a binomial draw flags abnormal vehicles; the flagged
   id set is folded into the RSU's rolling SHA-256 warning digest.

Determinism argument
--------------------
Per-RSU warning digests are invariant to shard count and rebalance
schedule:

- every draw an RSU makes comes from its own named stream
  (``city.<rsu>``) in the fixed order above, so *what* an RSU draws
  depends only on its own state, never on which worker hosts it;
- moves produced at tick ``t`` are applied at tick ``t+1`` everywhere
  (serial and sharded alike), and the stable ``(dst, src)`` lexsort
  admits them in an order independent of frame arrival order — equal
  sort keys can only originate from a single source bundle, because a
  source RSU lives in exactly one shard per tick;
- a rebalance ships the whole RSU — arrays, counters, digest, *and its
  exact RNG bit-generator state* — strictly between ticks over the
  same shared-memory rings the corridor engine uses, so the receiving
  worker continues the draw sequence bit for bit.

Hence shards=N produces digests bit-identical to shards=1, rebalancing
or not — which is the pinned acceptance test for BENCH_6.
"""

from __future__ import annotations

import gc
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.city.kernel import FusedShardState, build_shard_state
from repro.city.model import CitySpec
from repro.city.reference import (
    ID_STRIDE,
    TICK_DIGEST as _TICK_DIGEST,
    MoveBundle,
    RsuState,
    ShardState,
    rsu_stream_name,
)
from repro.city.topology import CityTopology, build_city_topology
from repro.obs.metrics import RegistrySnapshot
from repro.obs.trace import (
    SpanRecorder,
    active_recorder,
    disable_tracing,
    enable_tracing,
)
from repro.parallel.barrier import frame_target
from repro.parallel.engine import (
    DEFAULT_RING_CAPACITY,
    ParallelExecutionError,
    WindowTiming,
    critical_path_cpu_s,
)
from repro.parallel.plan import ShardPlanner
from repro.streaming.shm import ShmRing

__all__ = [
    "ID_STRIDE",
    "CityEngine",
    "CityResult",
    "FusedShardState",
    "MoveBundle",
    "RsuState",
    "ShardState",
    "build_shard_state",
    "profile_from_snapshot",
    "rsu_stream_name",
    "run_city",
]

#: Span names emitted by the fused kernel's five tick phases, in tick
#: order — the contract between ``CitySpec(profile=True)``, the worker
#: fold, and the ``repro city --profile`` report.
PROFILE_PHASES = (
    "city.moves",
    "city.arrivals",
    "city.churn",
    "city.detect",
    "city.digest",
)


def profile_from_snapshot(obs: RegistrySnapshot) -> Dict[str, Dict[str, float]]:
    """Per-phase breakdown from the folded ``span.city.*_ms`` histograms
    (the cross-process path: workers can only ship spans as metrics)."""
    breakdown: Dict[str, Dict[str, float]] = {}
    for phase in PROFILE_PHASES:
        hist = obs.histograms.get((f"span.{phase}_ms", ()))
        if hist is None:
            continue
        _edges, _counts, total_ms, count = hist
        if not count:
            continue
        breakdown[phase] = {
            "count": float(count),
            "total_ms": float(total_ms),
            "mean_ms": float(total_ms) / float(count),
        }
    return breakdown


# ----------------------------------------------------------------------
# Result
# ----------------------------------------------------------------------
@dataclass
class CityResult:
    """Everything a city run reports; the digest map is the correctness
    currency (bit-identical across shard counts)."""

    n_rsus: int
    n_shards: int
    n_ticks: int
    digests: Dict[str, str]
    warnings: Dict[str, int]
    spawned: int
    retired: int
    final_active: int
    in_flight: int
    migrations_produced: int
    migrations_applied: int
    peak_concurrent: int
    mean_concurrent: float
    rebalance_events: List[dict] = field(default_factory=list)
    serial_cpu_s: float = 0.0
    build_cpu_s: Tuple[float, ...] = ()
    window_timings: List[WindowTiming] = field(default_factory=list)
    wall_s: float = 0.0
    obs: Optional[RegistrySnapshot] = None
    #: Per-phase tick-time breakdown (``CitySpec(profile=True)`` only):
    #: span name -> {count, total_ms, mean_ms[, max_ms]}.
    profile: Optional[Dict[str, Dict[str, float]]] = None

    @property
    def warnings_total(self) -> int:
        return sum(self.warnings.values())

    def digest_signature(self) -> str:
        """One hex digest over the whole city's per-RSU digest map."""
        rollup = hashlib.sha256()
        for name in sorted(self.digests):
            rollup.update(name.encode("utf-8"))
            rollup.update(bytes.fromhex(self.digests[name]))
        return rollup.hexdigest()

    def critical_path_cpu_s(self) -> float:
        if self.n_shards == 1:
            return self.serial_cpu_s
        return critical_path_cpu_s(self.build_cpu_s, self.window_timings)

    def total_worker_cpu_s(self) -> float:
        if self.n_shards == 1:
            return self.serial_cpu_s
        total = sum(self.build_cpu_s)
        for timing in self.window_timings:
            total += sum(timing.worker_cpu_s)
        return total

    def audit(self) -> List[str]:
        """Conservation-law check; an empty list means the run is green."""
        violations: List[str] = []
        if self.spawned != self.retired + self.final_active + self.in_flight:
            violations.append(
                "vehicle conservation: spawned "
                f"{self.spawned} != retired {self.retired} + active "
                f"{self.final_active} + in-flight {self.in_flight}"
            )
        if self.migrations_produced != self.migrations_applied + self.in_flight:
            violations.append(
                "migration conservation: produced "
                f"{self.migrations_produced} != applied "
                f"{self.migrations_applied} + in-flight {self.in_flight}"
            )
        if len(self.digests) != self.n_rsus:
            violations.append(
                f"digest coverage: {len(self.digests)} of {self.n_rsus} RSUs"
            )
        if self.peak_concurrent < self.mean_concurrent:
            violations.append(
                f"peak {self.peak_concurrent} below mean {self.mean_concurrent}"
            )
        return violations


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    index: int
    process: object
    conn: object
    inbox: ShmRing
    outbox: ShmRing


class CityEngine:
    """Run a :class:`CitySpec` serially or across shard workers."""

    def __init__(
        self,
        spec: CitySpec,
        topology: Optional[CityTopology] = None,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        self.spec = spec
        self.topology = topology if topology is not None else build_city_topology(spec)
        self.ring_capacity = ring_capacity
        if spec.initial_assignments is not None:
            self._validate_assignments(spec.initial_assignments)
            self.assignments: List[List[str]] = [
                list(names) for names in spec.initial_assignments
            ]
        else:
            plan = ShardPlanner().plan(self.topology, spec.shards)
            self.assignments = [list(names) for names in plan.assignments]

    def _validate_assignments(self, assignments) -> None:
        flat = [name for names in assignments for name in names]
        expected = set(self.topology.rsu_names())
        if len(flat) != len(expected) or set(flat) != expected:
            raise ValueError(
                "initial_assignments must cover every RSU exactly once"
            )
        if len(assignments) != self.spec.shards:
            raise ValueError(
                f"initial_assignments has {len(assignments)} shards, "
                f"spec says {self.spec.shards}"
            )

    def run(self) -> CityResult:
        if self.spec.shards == 1:
            return self._run_serial()
        return self._run_sharded()

    # ------------------------------------------------------------------
    def _run_serial(self) -> CityResult:
        spec = self.spec
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        shard = build_shard_state(spec, self.topology, range(len(self.topology)))
        pending: List[MoveBundle] = []
        peak = 0
        load_sum = 0
        produced = 0
        # Profiling installs a recorder sized to hold every phase span
        # of the run (5 per tick), so the summary is exact, not a tail.
        recorder = None
        prior_recorder = active_recorder()
        if spec.profile:
            # Up to 7 spans per tick (moves and churn each open twice);
            # size the ring so no span of the run is ever dropped.
            recorder = enable_tracing(SpanRecorder(capacity=8 * spec.n_ticks + 8))
        # The tick loop allocates heavily but creates no reference
        # cycles (arrays, tuples, dicts of arrays); cyclic GC passes are
        # pure pause time, so suspend them for the duration.  The shard
        # workers do the same, keeping serial and sharded comparable.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for tick_index in range(spec.n_ticks):
                now = tick_index * spec.tick_s
                moves, (_, counts) = shard.tick(tick_index, now, pending)
                pending = moves
                produced += sum(int(bundle[0].size) for bundle in moves)
                concurrent = int(counts.sum())
                load_sum += concurrent
                if concurrent > peak:
                    peak = concurrent
        finally:
            if gc_was_enabled:
                gc.enable()
            if recorder is not None:
                if prior_recorder is not None:
                    enable_tracing(prior_recorder)
                else:
                    disable_tracing()
        cpu = time.process_time() - cpu_start
        wall = time.perf_counter() - wall_start
        in_flight = sum(int(bundle[0].size) for bundle in pending)
        per_rsu = shard.rsu_results()
        obs = None
        if spec.observability:
            obs = self._fold_obs([per_rsu], produced)
            if recorder is not None:
                from repro.obs import metrics as obs_metrics

                registry = obs_metrics.MetricsRegistry()
                recorder.fold_into(registry)
                obs = obs.merge(registry.snapshot())
        return CityResult(
            n_rsus=len(self.topology),
            n_shards=1,
            n_ticks=spec.n_ticks,
            digests={name: r["digest"] for name, r in per_rsu.items()},
            warnings={name: r["warnings"] for name, r in per_rsu.items()},
            spawned=sum(r["spawned"] for r in per_rsu.values()),
            retired=sum(r["retired"] for r in per_rsu.values()),
            final_active=sum(r["active"] for r in per_rsu.values()),
            in_flight=in_flight,
            migrations_produced=produced,
            migrations_applied=shard.moves_applied,
            peak_concurrent=peak,
            mean_concurrent=load_sum / max(spec.n_ticks, 1),
            serial_cpu_s=cpu,
            wall_s=wall,
            obs=obs,
            profile=recorder.summary() if recorder is not None else None,
        )

    def _fold_obs(self, shard_results: List[Dict[str, dict]], produced: int):
        """End-of-run fold of city totals into one snapshot (the hot
        loop never touches the registry, same policy as ``repro.obs``)."""
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.MetricsRegistry()
        for per_rsu in shard_results:
            for result in per_rsu.values():
                registry.counter("city.vehicles_spawned").inc(result["spawned"])
                registry.counter("city.vehicles_retired").inc(result["retired"])
                registry.counter("city.warnings").inc(result["warnings"])
        registry.counter("city.migrations").inc(produced)
        return registry.snapshot()

    # ------------------------------------------------------------------
    def _run_sharded(self) -> CityResult:
        from repro.city.worker import CityWorkerContext, city_worker_main

        spec = self.spec
        topology = self.topology
        n_shards = len(self.assignments)
        index_of = {name: i for i, name in enumerate(topology.rsu_names())}
        shard_of = [0] * len(topology)
        for shard, names in enumerate(self.assignments):
            for name in names:
                shard_of[index_of[name]] = shard

        mp_ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        wall_start = time.perf_counter()
        workers: List[_WorkerHandle] = []
        try:
            for shard in range(n_shards):
                parent_conn, child_conn = mp_ctx.Pipe()
                inbox = ShmRing(self.ring_capacity)
                outbox = ShmRing(self.ring_capacity)
                ctx = CityWorkerContext(
                    shard_index=shard,
                    n_shards=n_shards,
                    spec=spec,
                    topology=topology,
                    owned=tuple(
                        sorted(index_of[name] for name in self.assignments[shard])
                    ),
                    shard_of=tuple(shard_of),
                    conn=child_conn,
                    inbox=inbox,
                    outbox=outbox,
                )
                process = mp_ctx.Process(
                    target=city_worker_main, args=(ctx,), daemon=True
                )
                process.start()
                child_conn.close()
                workers.append(
                    _WorkerHandle(shard, process, parent_conn, inbox, outbox)
                )
            return self._drive(workers, wall_start)
        finally:
            for worker in workers:
                if worker.process.is_alive():
                    worker.process.terminate()
                worker.process.join()
                worker.conn.close()
                for ring in (worker.inbox, worker.outbox):
                    ring.close()
                    ring.unlink()

    def _recv(self, worker: _WorkerHandle, expect: str):
        message = worker.conn.recv()
        if message[0] == "error":
            raise ParallelExecutionError(
                f"city shard {worker.index} failed:\n{message[1]}"
            )
        if message[0] != expect:
            raise ParallelExecutionError(
                f"city shard {worker.index}: expected {expect!r}, "
                f"got {message[0]!r}"
            )
        return message

    def _drive(
        self, workers: List[_WorkerHandle], wall_start: float
    ) -> CityResult:
        spec = self.spec
        topology = self.topology
        planner = ShardPlanner()
        build_cpu = tuple(self._recv(w, "ready")[1] for w in workers)
        index_of = {name: i for i, name in enumerate(topology.rsu_names())}

        # Frames routed between workers are *staged* engine-side and only
        # pushed into a worker's inbox right before its next Pipe message
        # — at that point the worker is provably idle (the engine has its
        # previous reply), so an inbox push can never race the worker's
        # own exact-count drain of the current tick's frames.
        staged: List[List[Tuple[int, bytes]]] = [[] for _ in workers]
        window_timings: List[WindowTiming] = []
        rebalance_events: List[dict] = []
        load_accum = np.zeros(len(topology), dtype=np.int64)
        window_ticks = 0
        peak = 0
        load_sum = 0
        interval = spec.rebalance_interval_ticks
        # Scheduling policy: with at least one core per worker, broadcast
        # the tick so shards genuinely run concurrently.  On a host with
        # fewer cores than shards, concurrency is pure oversubscription —
        # the workers time-slice one another, and the context-switch
        # cache thrash shows up as inflated per-worker CPU.  Driving the
        # same protocol worker-at-a-time does identical work, leaves the
        # frame traffic and results bit-identical, and keeps the CPU
        # critical path (what wall clock converges to on a wide host)
        # faithfully measured.
        oversubscribed = (os.cpu_count() or 1) < len(workers)

        def send_tick(worker, frames, tick_index, now, decision_tick):
            for kind, buf in frames:
                worker.inbox.push(kind, buf)
            worker.conn.send(
                ("tick", tick_index, now, len(frames), not decision_tick)
            )

        def recv_tick(worker, worker_cpu, decision_tick):
            message = self._recv(worker, "ticked")
            worker_cpu[worker.index] = message[1]
            if decision_tick:
                # Window boundary: the worker ships its per-RSU loads
                # summed over the closing window in one vector.
                indices, counts = message[3], message[4]
                load_accum[indices] += counts
            else:
                # The worker routed before replying, so its outbox is
                # complete the moment "ticked" lands.
                for kind, buf in worker.outbox.drain():
                    staged[int(frame_target(buf))].append((kind, buf))
            return message[2]

        for tick_index in range(spec.n_ticks):
            now = tick_index * spec.tick_s
            # Ownership can only change on a rebalance-decision tick, so
            # every other tick runs the fused protocol: the worker routes
            # its moves under the (fixed) shard map inside the tick and a
            # single Pipe round trip covers both phases.
            decision_tick = bool(interval) and (tick_index + 1) % interval == 0
            engine_cpu_start = time.process_time()
            worker_cpu = [0.0] * len(workers)
            concurrent = 0
            # Snapshot this tick's inbound frames before any worker runs:
            # frames a worker produces *during* this tick land in the
            # fresh `staged` and are delivered next tick, keeping the
            # produced-at-t / applied-at-t+1 rule independent of whether
            # workers run concurrently or one at a time.
            inbound = staged
            staged = [[] for _ in workers]
            if oversubscribed:
                for worker in workers:
                    send_tick(
                        worker, inbound[worker.index], tick_index, now,
                        decision_tick,
                    )
                    concurrent += recv_tick(worker, worker_cpu, decision_tick)
            else:
                for worker in workers:
                    send_tick(
                        worker, inbound[worker.index], tick_index, now,
                        decision_tick,
                    )
                for worker in workers:
                    concurrent += recv_tick(worker, worker_cpu, decision_tick)
            window_ticks += 1
            load_sum += concurrent
            if concurrent > peak:
                peak = concurrent

            reassignments: List[Tuple[int, int]] = []
            if decision_tick:
                mean_loads = {
                    rsu.name: load_accum[rsu.index] / window_ticks
                    + spec.rebalance_rsu_cost
                    for rsu in topology.rsus
                }
                decisions = planner.rebalance(
                    self.assignments,
                    mean_loads,
                    threshold=spec.rebalance_threshold,
                )
                for decision in decisions:
                    self.assignments[decision.from_shard].remove(decision.rsu)
                    self.assignments[decision.to_shard].append(decision.rsu)
                    reassignments.append(
                        (index_of[decision.rsu], decision.to_shard)
                    )
                    rebalance_events.append(
                        {
                            "tick": tick_index + 1,
                            "rsu": decision.rsu,
                            "from_shard": decision.from_shard,
                            "to_shard": decision.to_shard,
                        }
                    )
                load_accum[:] = 0
                window_ticks = 0

                def recv_flush(worker):
                    _, cpu_s = self._recv(worker, "flushed")
                    worker_cpu[worker.index] += cpu_s
                    for kind, buf in worker.outbox.drain():
                        staged[int(frame_target(buf))].append((kind, buf))

                if oversubscribed:
                    for worker in workers:
                        worker.conn.send(("flush", reassignments))
                        recv_flush(worker)
                else:
                    for worker in workers:
                        worker.conn.send(("flush", reassignments))
                    for worker in workers:
                        recv_flush(worker)
            window_timings.append(
                WindowTiming(
                    barrier_s=now,
                    worker_cpu_s=tuple(worker_cpu),
                    engine_cpu_s=time.process_time() - engine_cpu_start,
                )
            )

        for worker in workers:
            frames = staged[worker.index]
            staged[worker.index] = []
            for kind, buf in frames:
                worker.inbox.push(kind, buf)
            worker.conn.send(("collect", len(frames)))
        shard_results = [self._recv(w, "result")[1] for w in workers]
        for worker in workers:
            worker.process.join()
        wall = time.perf_counter() - wall_start

        per_rsu: Dict[str, dict] = {}
        for result in shard_results:
            per_rsu.update(result["rsus"])
        produced = sum(r["produced"] for r in shard_results)
        applied = sum(r["applied"] for r in shard_results)
        in_flight = sum(r["in_flight"] for r in shard_results)
        obs = None
        if spec.observability:
            obs = RegistrySnapshot()
            for result in shard_results:
                if result.get("obs") is not None:
                    obs = obs.merge(RegistrySnapshot.decode(result["obs"]))
            obs = obs.merge(self._fold_obs([per_rsu], produced))
        # Worker spans only cross the process boundary as folded
        # histograms, so the sharded breakdown comes from the snapshot.
        profile = None
        if spec.profile and obs is not None:
            profile = profile_from_snapshot(obs)
        return CityResult(
            n_rsus=len(topology),
            n_shards=len(workers),
            n_ticks=spec.n_ticks,
            digests={name: r["digest"] for name, r in per_rsu.items()},
            warnings={name: r["warnings"] for name, r in per_rsu.items()},
            spawned=sum(r["spawned"] for r in per_rsu.values()),
            retired=sum(r["retired"] for r in per_rsu.values()),
            final_active=sum(r["active"] for r in per_rsu.values()),
            in_flight=in_flight,
            migrations_produced=produced,
            migrations_applied=applied,
            peak_concurrent=peak,
            mean_concurrent=load_sum / max(spec.n_ticks, 1),
            rebalance_events=rebalance_events,
            build_cpu_s=build_cpu,
            window_timings=window_timings,
            wall_s=wall,
            obs=obs,
            profile=profile,
        )


def run_city(spec: CitySpec) -> CityResult:
    """Build the topology and run ``spec`` end to end."""
    return CityEngine(spec).run()
