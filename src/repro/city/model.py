"""City workload specification: demand waves and trip-churn parameters.

The city workload is *mesoscopic*: it tracks every vehicle's identity,
trip end time and per-RSU residence individually (so churn, migration
and abnormal-detection accounting are exact), but does not simulate the
telemetry data plane per vehicle — at ≥100k concurrent vehicles over a
simulated day that would be ~10^10 micro-batch events.  The corridor
scenarios remain the microscopic ground truth for the data plane; the
city layer exercises scale, churn, and shard rebalancing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class DemandWave:
    """Hour-of-day demand multipliers (piecewise constant, 24 entries).

    ``multiplier(t)`` is a step function of the simulated clock — no
    interpolation, so the value at any instant is exactly reproducible
    regardless of tick size.
    """

    hourly: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.hourly) != 24:
            raise ValueError(
                f"demand wave needs 24 hourly multipliers, got {len(self.hourly)}"
            )
        if any(m < 0 for m in self.hourly):
            raise ValueError("demand multipliers must be >= 0")

    def multiplier(self, t_s: float) -> float:
        return self.hourly[int(t_s // 3600.0) % 24]

    @property
    def peak(self) -> float:
        return max(self.hourly)

    @property
    def mean(self) -> float:
        return sum(self.hourly) / 24.0


#: A commuter city's double peak: quiet small hours, AM rush cresting at
#: 08:00, a midday plateau, and a taller PM rush at 17:00–18:00.
COMMUTE_WAVE = DemandWave(
    (
        0.18, 0.12, 0.10, 0.10, 0.14, 0.32,  # 00:00 – 05:59
        0.75, 1.30, 1.45, 1.10, 0.95, 1.00,  # 06:00 – 11:59
        1.05, 1.00, 0.98, 1.05, 1.20, 1.50,  # 12:00 – 17:59
        1.40, 1.00, 0.75, 0.55, 0.40, 0.26,  # 18:00 – 23:59
    )
)

#: Flat demand — useful for tests that want stationary load.
FLAT_WAVE = DemandWave((1.0,) * 24)


@dataclass(frozen=True)
class CitySpec:
    """Everything that determines a city run, bit for bit.

    The same ``CitySpec`` (ignoring ``shards`` and the rebalance knobs)
    produces identical per-RSU warning digests at any shard count — see
    ``repro.city.engine`` for the determinism argument.
    """

    seed: int = 7
    #: Simulated horizon; default one full day.
    duration_s: float = 86400.0
    #: Mesoscopic tick — arrivals, expiries, moves and detection are
    #: resolved once per tick per RSU.
    tick_s: float = 60.0
    #: Scale on Table V per-road-type trunk counts (1.0 = full Shenzhen).
    count_scale: float = 0.05
    #: Base Poisson arrival rate per RSU at demand multiplier 1.0; each
    #: RSU's actual rate is this times its density-derived weight.
    arrivals_per_rsu_hour: float = 650.0
    #: Mean total trip duration (exponential).
    mean_trip_s: float = 1800.0
    #: Mean residence under one RSU before migrating (exponential).
    mean_residence_s: float = 900.0
    #: Per-vehicle-per-tick probability of an abnormal-driving flag.
    abnormal_prob: float = 2e-4
    demand_wave: DemandWave = COMMUTE_WAVE
    shards: int = 1
    #: Rebalance cadence in ticks; 0 disables dynamic rebalancing.
    rebalance_interval_ticks: int = 0
    #: Max/min shard-load imbalance (as a fraction of the mean shard
    #: load) tolerated before RSUs migrate between workers.
    rebalance_threshold: float = 0.25
    #: Fixed per-RSU tick cost in vehicle-equivalents, added to each
    #: RSU's measured vehicle count when shard loads are compared.  An
    #: RSU's tick burns CPU on a fixed slate of array ops regardless of
    #: occupancy, so a shard's real cost is ``vehicles + cost *
    #: n_rsus`` — balancing raw vehicle counts alone leaves shards with
    #: more RSUs systematically slower.
    rebalance_rsu_cost: float = 250.0
    observability: bool = False
    #: Tick kernel: "fused" (arena-pooled, the default) or "reference"
    #: (the PR 7 per-RSU object engine, kept as ground truth).  Both
    #: produce bit-identical digests; the differential tests and the
    #: fuzz oracle enforce it.
    kernel: str = "fused"
    #: Record per-phase tick spans (arrivals / churn / moves / detect /
    #: digest) and attach the breakdown to ``CityResult.profile``.
    #: Sharded runs ship spans as folded histograms inside the obs
    #: snapshot, so ``profile`` with ``shards > 1`` requires
    #: ``observability``.
    profile: bool = False
    #: RSU placement knobs, forwarded to :class:`RsuPlacementPlanner`.
    rsu_spacing_m: float = 1000.0
    vehicles_per_rsu: int = 256
    #: Override the initial RSU→shard assignment (tuple of name tuples).
    #: ``None`` uses the greedy-LPT :class:`ShardPlanner`.  A skewed
    #: override is how the benchmark forces a rebalance event without
    #: waiting for organic drift.
    initial_assignments: Optional[Tuple[Tuple[str, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.count_scale <= 0:
            raise ValueError("count_scale must be positive")
        if self.arrivals_per_rsu_hour < 0:
            raise ValueError("arrivals_per_rsu_hour must be >= 0")
        if self.mean_trip_s <= 0 or self.mean_residence_s <= 0:
            raise ValueError("trip and residence means must be positive")
        if not 0.0 <= self.abnormal_prob <= 1.0:
            raise ValueError("abnormal_prob must be in [0, 1]")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.rebalance_interval_ticks < 0:
            raise ValueError("rebalance_interval_ticks must be >= 0")
        if self.rebalance_threshold < 0:
            raise ValueError("rebalance_threshold must be >= 0")
        if self.rebalance_rsu_cost < 0:
            raise ValueError("rebalance_rsu_cost must be >= 0")
        if self.kernel not in ("fused", "reference"):
            raise ValueError(
                f"kernel must be 'fused' or 'reference', got {self.kernel!r}"
            )
        if self.profile and self.shards > 1 and not self.observability:
            raise ValueError(
                "profile with shards > 1 requires observability=True "
                "(worker spans travel inside the obs snapshot)"
            )

    @property
    def n_ticks(self) -> int:
        return int(round(self.duration_s / self.tick_s))

    def replace(self, **overrides) -> "CitySpec":
        return replace(self, **overrides)
