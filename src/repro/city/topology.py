"""City topology: RSUs instantiated from the Table V placement plan.

``repro.deploy.placement`` sizes the RSU fleet per road class from the
synthetic Shenzhen network; this module turns those *counts* into named,
connected RSUs the workload engine can route vehicles between.  The
graph is deterministic in the spec alone: RSUs are clustered into
interchange neighbourhoods (a hub star per cluster, hubs chained in a
ring), which gives every RSU at least one neighbour and keeps most
migrations local — the same property the corridor handover graph has.

``CityTopology`` duck-types the three methods :class:`ShardPlanner`
reads (``rsu_names`` / ``vehicle_load`` / ``edges``), so the greedy-LPT
partitioner works on a city unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.city.model import CitySpec
from repro.deploy.placement import PlacementPlan, RsuPlacementPlanner
from repro.geo.network_builder import CityNetworkBuilder, NetworkSpec, TABLE_V_SPECS
from repro.geo.roadnet import RoadType

#: RSUs per interchange cluster (hub + members).
CLUSTER_SIZE = 8


@dataclass(frozen=True)
class CityRsu:
    """One deployed RSU: identity, class, demand weight, neighbourhood."""

    index: int
    name: str
    road_type: RoadType
    #: Relative arrival-rate weight (mean over all RSUs is 1.0), derived
    #: from the road class's Table V traffic-density share.
    arrival_weight: float
    #: Global indices of migration-adjacent RSUs (sorted, no self).
    neighbours: Tuple[int, ...]


class CityTopology:
    """The full RSU fleet with its migration graph."""

    def __init__(self, rsus: Tuple[CityRsu, ...], placement: PlacementPlan):
        self.rsus = rsus
        self.placement = placement
        self._by_name: Dict[str, CityRsu] = {r.name: r for r in rsus}

    def __len__(self) -> int:
        return len(self.rsus)

    def rsu(self, name: str) -> CityRsu:
        return self._by_name[name]

    # -- the ShardPlanner protocol ------------------------------------
    def rsu_names(self) -> List[str]:
        return [r.name for r in self.rsus]

    def vehicle_load(self) -> Dict[str, float]:
        return {r.name: r.arrival_weight for r in self.rsus}

    def edges(self) -> List[Tuple[str, str]]:
        """Directed migration edges as (src name, dst name) pairs."""
        return [
            (rsu.name, self.rsus[j].name)
            for rsu in self.rsus
            for j in rsu.neighbours
        ]


def build_city_topology(spec: CitySpec) -> CityTopology:
    """Instantiate the RSU fleet for ``spec``, deterministically.

    One RSU per ``rsus_required`` of each placement row, named
    ``<road_type>-<k>``; arrival weights split each class's traffic-
    density share evenly over its RSUs, normalised so the fleet mean is
    1.0 (which makes ``arrivals_per_rsu_hour`` the fleet-average rate).
    """
    network = CityNetworkBuilder(seed=spec.seed).build_city(
        NetworkSpec(count_scale=spec.count_scale)
    )
    densities = {rt: cls.traffic_density for rt, cls in TABLE_V_SPECS.items()}
    placement = RsuPlacementPlanner(
        rsu_spacing_m=spec.rsu_spacing_m,
        vehicles_per_rsu=spec.vehicles_per_rsu,
    ).plan(network, densities)

    raw: List[Tuple[str, RoadType, float]] = []
    for row in placement.rows:
        share = row.traffic_density / row.rsus_required
        for k in range(row.rsus_required):
            raw.append((f"{row.road_type.value}-{k:04d}", row.road_type, share))
    if not raw:
        raise ValueError("placement plan produced zero RSUs")
    mean_share = sum(share for _, _, share in raw) / len(raw)

    neighbours: List[set] = [set() for _ in raw]
    n_clusters = (len(raw) + CLUSTER_SIZE - 1) // CLUSTER_SIZE
    hubs = [c * CLUSTER_SIZE for c in range(n_clusters)]
    for cluster, hub in enumerate(hubs):
        for member in range(hub + 1, min(hub + CLUSTER_SIZE, len(raw))):
            neighbours[hub].add(member)
            neighbours[member].add(hub)
    if len(hubs) > 1:
        for i, hub in enumerate(hubs):
            nxt = hubs[(i + 1) % len(hubs)]
            neighbours[hub].add(nxt)
            neighbours[nxt].add(hub)

    rsus = tuple(
        CityRsu(
            index=i,
            name=name,
            road_type=road_type,
            arrival_weight=share / mean_share,
            neighbours=tuple(sorted(neighbours[i])),
        )
        for i, (name, road_type, share) in enumerate(raw)
    )
    return CityTopology(rsus, placement)
