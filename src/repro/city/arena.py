"""Segment arena: pooled columnar vehicle storage for the fused kernel.

One shard owns one arena — three parallel pooled arrays (``ids``,
``depart``, ``leave``) in which every RSU's resident vehicles live as
one contiguous segment.  A segment is addressed by an integer *handle*
into the ``off`` / ``length`` / ``cap`` tables, so cross-RSU batched
tick work is plain fancy indexing over pooled arrays instead of one
small-array call per RSU.

Allocation policy
-----------------
- Segments reserve power-of-two capacities (min :data:`MIN_SEGMENT`)
  and grow by doubling: a relocation copies only the live rows, and
  amortized admit cost is O(1) per vehicle — this is what removes the
  reference kernel's triple ``np.concatenate`` per admit.
- Freed and vacated blocks go to a first-fit free list kept sorted by
  offset with neighbour coalescing.
- When no free block fits but total free space does (fragmentation
  after churny rebalances), an epoch compaction repacks every segment
  left-justified in handle order; only then does the arena itself grow
  (also by doubling).

Holes
-----
A segment's ``[off, off + length)`` extent holds its rows *in order*
but may contain **holes**: rows retired in place by stamping the
dead-slot sentinels (``leave = +inf`` / ``depart = -inf``) rather than
sliding every survivor left.  ``live[handle]`` counts the non-hole
rows.  This is what makes per-tick churn O(dropped) instead of
O(resident): the fused tick's due scan (``leave <= now`` over the pool
prefix, bounded by ``high_water``) never sees a hole because holes are
never due, and per-segment order is preserved because stamping never
reorders.  Only when a segment's holes outgrow its live rows does it
get re-packed (:meth:`compact_segment`, in place) — the epoch analogue
of a garbage collection, amortized O(1) per retirement.

Every slot outside the segment extents (tail slack, free blocks)
carries the same sentinels, so :meth:`check` can assert the full
structure: segments and free blocks exactly tile the pool, hole
counts match ``length - live``, and every dead slot is stamped.  The
hypothesis suite drives it through random op sequences.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: Smallest segment capacity ever reserved (slots).
MIN_SEGMENT = 64

#: Dead-slot sentinels (see module docstring): a dead slot is never due
#: and never kept.
DEAD_LEAVE = np.inf
DEAD_DEPART = -np.inf


def _pow2_at_least(n: int) -> int:
    return 1 << max(int(n) - 1, 1).bit_length() if n > 2 else 2


def segment_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[starts[j], starts[j] + counts[j])`` index ranges.

    The scatter/gather workhorse: one call yields the pooled-array
    positions of every segment's rows (or tails) without a Python loop.
    Built as a cumsum over a stride-1 delta array with segment-boundary
    jumps scattered in — one pass over the output instead of the ~5 a
    ``repeat`` + ``arange`` construction costs.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    if counts.min() <= 0:
        nonzero = counts > 0
        starts = starts[nonzero]
        counts = counts[nonzero]
    step = np.ones(total, dtype=np.int64)
    step[0] = starts[0]
    if counts.size > 1:
        bounds = np.cumsum(counts[:-1])
        step[bounds] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(step)


class SegmentArena:
    """Pooled ``ids`` / ``depart`` / ``leave`` columns plus segment tables."""

    __slots__ = (
        "capacity",
        "high_water",
        "ids",
        "depart",
        "leave",
        "off",
        "length",
        "live",
        "cap",
        "_free_handles",
        "_n_handles",
        "_free_blocks",
        "relocations",
        "compactions",
        "grows",
    )

    def __init__(self, capacity_hint: int = 4096) -> None:
        self.capacity = _pow2_at_least(max(int(capacity_hint), MIN_SEGMENT))
        self.high_water = 0
        self.ids = np.empty(self.capacity, dtype=np.int64)
        self.depart = np.full(self.capacity, DEAD_DEPART, dtype=np.float64)
        self.leave = np.full(self.capacity, DEAD_LEAVE, dtype=np.float64)
        # Handle-indexed segment tables; a freed handle keeps cap == 0.
        # `length` is the physical extent (live rows + holes), `live`
        # the number of non-hole rows.
        self.off = np.zeros(8, dtype=np.int64)
        self.length = np.zeros(8, dtype=np.int64)
        self.live = np.zeros(8, dtype=np.int64)
        self.cap = np.zeros(8, dtype=np.int64)
        self._free_handles: List[int] = []
        self._n_handles = 0
        #: (offset, size) blocks sorted by offset, coalesced.
        self._free_blocks: List[List[int]] = [[0, self.capacity]]
        self.relocations = 0
        self.compactions = 0
        self.grows = 0

    # -- segment lifecycle --------------------------------------------
    def alloc(self, reserve: int = MIN_SEGMENT) -> int:
        """Create an empty segment with at least ``reserve`` capacity."""
        want = _pow2_at_least(max(int(reserve), MIN_SEGMENT))
        if self._free_handles:
            handle = self._free_handles.pop()
        else:
            handle = self._n_handles
            self._n_handles += 1
            if handle >= self.off.size:
                grown = self.off.size * 2
                for name in ("off", "length", "live", "cap"):
                    table = np.zeros(grown, dtype=np.int64)
                    table[: getattr(self, name).size] = getattr(self, name)
                    setattr(self, name, table)
        self.off[handle] = self._take_block(want)
        self.length[handle] = 0
        self.live[handle] = 0
        self.cap[handle] = want
        return handle

    def free(self, handle: int) -> None:
        """Return a segment's whole capacity block to the free list."""
        self.kill_rows(int(self.off[handle]), int(self.length[handle]))
        self._give_block(int(self.off[handle]), int(self.cap[handle]))
        self.off[handle] = 0
        self.length[handle] = 0
        self.live[handle] = 0
        self.cap[handle] = 0
        self._free_handles.append(handle)

    def reserve(self, handle: int, extra: int) -> None:
        """Ensure ``extra`` more rows fit past the physical tail.

        Reclaims holes in place when that alone makes room; otherwise
        relocates to a doubled block, copying (and de-holing) only the
        live rows.
        """
        need = int(self.length[handle]) + int(extra)
        old_cap = int(self.cap[handle])
        if need <= old_cap:
            return
        live = int(self.live[handle])
        holes = int(self.length[handle]) - live
        # Reclaim in place only when it buys real runway (hysteresis):
        # a near-full segment with a handful of holes would otherwise
        # re-pack every tick, copying all live rows to gain a few slots.
        if live + int(extra) <= old_cap and holes >= max(
            int(extra), old_cap >> 2
        ):
            self.compact_segment(handle)
            return
        want = _pow2_at_least(max(live + int(extra), old_cap * 2))
        # _take_block may compact, which moves (and re-reads) this very
        # segment — fetch off/length only after the block is secured.
        new_off = self._take_block(want)
        old_off = int(self.off[handle])
        n = int(self.length[handle])
        if n:
            window = slice(old_off, old_off + n)
            if live == n:
                self.ids[new_off : new_off + n] = self.ids[window]
                self.depart[new_off : new_off + n] = self.depart[window]
                self.leave[new_off : new_off + n] = self.leave[window]
            else:
                keep = self.leave[window] != DEAD_LEAVE
                self.ids[new_off : new_off + live] = self.ids[window][keep]
                self.depart[new_off : new_off + live] = self.depart[window][keep]
                self.leave[new_off : new_off + live] = self.leave[window][keep]
            self.kill_rows(old_off, n)
            self.relocations += 1
        self._give_block(old_off, int(self.cap[handle]))
        self.off[handle] = new_off
        self.length[handle] = live
        self.cap[handle] = want

    def compact_segment(self, handle: int) -> None:
        """Slide a segment's live rows left over its holes (in place).

        Stable: boolean extraction preserves row order, which the
        detection digests depend on.
        """
        lo = int(self.off[handle])
        n = int(self.length[handle])
        live = int(self.live[handle])
        if live == n:
            return
        window = slice(lo, lo + n)
        keep = self.leave[window] != DEAD_LEAVE
        self.ids[lo : lo + live] = self.ids[window][keep]
        self.depart[lo : lo + live] = self.depart[window][keep]
        self.leave[lo : lo + live] = self.leave[window][keep]
        self.kill_rows(lo + live, n - live)
        self.length[handle] = live
        self.compactions += 1

    def append(self, handle: int, ids, depart, leave) -> None:
        """Append rows to one segment (the slow path; the fused tick
        batches appends across segments with :func:`segment_ranges`)."""
        n = len(ids)
        if not n:
            return
        self.reserve(handle, n)
        tail = int(self.off[handle]) + int(self.length[handle])
        self.ids[tail : tail + n] = ids
        self.depart[tail : tail + n] = depart
        self.leave[tail : tail + n] = leave
        self.length[handle] += n
        self.live[handle] += n

    def kill_rows(self, start: int, count: int) -> None:
        """Stamp the dead-slot sentinels over a vacated row range."""
        self.leave[start : start + count] = DEAD_LEAVE
        self.depart[start : start + count] = DEAD_DEPART

    def rows(self, handle: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Views of one segment's physical extent — may contain holes
        (valid until the next alloc)."""
        lo = int(self.off[handle])
        hi = lo + int(self.length[handle])
        return self.ids[lo:hi], self.depart[lo:hi], self.leave[lo:hi]

    def extract(self, handle: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense copies of one segment's live rows, holes elided, order
        preserved — the pack/transfer representation."""
        ids, depart, leave = self.rows(handle)
        if int(self.live[handle]) == ids.size:
            return ids.copy(), depart.copy(), leave.copy()
        keep = leave != DEAD_LEAVE
        return ids[keep], depart[keep], leave[keep]

    # -- block management ---------------------------------------------
    def _take_block(self, want: int) -> int:
        for block in self._free_blocks:
            if block[1] >= want:
                offset = block[0]
                block[0] += want
                block[1] -= want
                if block[1] == 0:
                    self._free_blocks.remove(block)
                if offset + want > self.high_water:
                    self.high_water = offset + want
                return offset
        if sum(b[1] for b in self._free_blocks) >= want:
            self.compact()
            return self._take_block(want)
        self._grow(want)
        return self._take_block(want)

    def _give_block(self, offset: int, size: int) -> None:
        if size == 0:
            return
        blocks = self._free_blocks
        lo = 0
        while lo < len(blocks) and blocks[lo][0] < offset:
            lo += 1
        blocks.insert(lo, [offset, size])
        # Coalesce with right then left neighbour.
        if lo + 1 < len(blocks) and blocks[lo][0] + blocks[lo][1] == blocks[lo + 1][0]:
            blocks[lo][1] += blocks[lo + 1][1]
            del blocks[lo + 1]
        if lo > 0 and blocks[lo - 1][0] + blocks[lo - 1][1] == blocks[lo][0]:
            blocks[lo - 1][1] += blocks[lo][1]
            del blocks[lo]

    def compact(self) -> None:
        """Repack every live segment left-justified, in handle order.

        Rewrites into fresh pool arrays (segments may move rightward
        when an earlier segment's capacity grew, so in-place sliding is
        not safe in general); rare enough that the full copy is noise.
        """
        new_ids = np.empty(self.capacity, dtype=np.int64)
        new_depart = np.full(self.capacity, DEAD_DEPART, dtype=np.float64)
        new_leave = np.full(self.capacity, DEAD_LEAVE, dtype=np.float64)
        cursor = 0
        for handle in range(self._n_handles):
            seg_cap = int(self.cap[handle])
            if seg_cap == 0:
                continue
            n = int(self.length[handle])
            live = int(self.live[handle])
            lo = int(self.off[handle])
            if live == n:
                if n:
                    new_ids[cursor : cursor + n] = self.ids[lo : lo + n]
                    new_depart[cursor : cursor + n] = self.depart[lo : lo + n]
                    new_leave[cursor : cursor + n] = self.leave[lo : lo + n]
            else:
                # De-hole while we're rewriting anyway (stable).
                window = slice(lo, lo + n)
                keep = self.leave[window] != DEAD_LEAVE
                new_ids[cursor : cursor + live] = self.ids[window][keep]
                new_depart[cursor : cursor + live] = self.depart[window][keep]
                new_leave[cursor : cursor + live] = self.leave[window][keep]
                self.length[handle] = live
            self.off[handle] = cursor
            cursor += seg_cap
        self.ids, self.depart, self.leave = new_ids, new_depart, new_leave
        self._free_blocks = (
            [[cursor, self.capacity - cursor]] if cursor < self.capacity else []
        )
        self.high_water = cursor
        self.compactions += 1

    def _grow(self, min_extra: int) -> None:
        new_capacity = self.capacity * 2
        while new_capacity - self.capacity < min_extra:
            new_capacity *= 2
        fills = {"ids": None, "depart": DEAD_DEPART, "leave": DEAD_LEAVE}
        for name, fill in fills.items():
            old = getattr(self, name)
            if fill is None:
                grown = np.empty(new_capacity, dtype=old.dtype)
            else:
                grown = np.full(new_capacity, fill, dtype=old.dtype)
            grown[: self.capacity] = old
            setattr(self, name, grown)
        self._give_block(self.capacity, new_capacity - self.capacity)
        self.capacity = new_capacity
        self.grows += 1

    # -- accounting / invariants --------------------------------------
    def live_rows(self) -> int:
        return int(self.live[: self._n_handles].sum())

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "live_rows": self.live_rows(),
            "holes": int(
                (self.length[: self._n_handles] - self.live[: self._n_handles]).sum()
            ),
            "relocations": self.relocations,
            "compactions": self.compactions,
            "grows": self.grows,
        }

    def check(self) -> None:
        """Assert the structural invariants (test/debug only).

        Segment capacity ranges and free blocks must exactly tile
        ``[0, capacity)`` with no overlap — i.e. the free list never
        aliases a live segment and no slot leaks; every dead slot (tail
        slack, free blocks, and in-extent holes) must carry the
        ``leave``/``depart`` sentinels; and each segment's hole count
        must equal ``length - live``.
        """
        spans = []
        for handle in range(self._n_handles):
            seg_cap = int(self.cap[handle])
            if seg_cap == 0:
                continue
            n = int(self.length[handle])
            live = int(self.live[handle])
            if not 0 <= n <= seg_cap:
                raise AssertionError(f"handle {handle}: length {n} > cap {seg_cap}")
            if not 0 <= live <= n:
                raise AssertionError(f"handle {handle}: live {live} > length {n}")
            spans.append((int(self.off[handle]), seg_cap, f"seg {handle}"))
        for offset, size in self._free_blocks:
            if size <= 0:
                raise AssertionError(f"empty free block at {offset}")
            spans.append((offset, size, "free"))
        spans.sort()
        cursor = 0
        for offset, size, label in spans:
            if offset != cursor:
                kind = "overlap" if offset < cursor else "gap"
                raise AssertionError(
                    f"{kind} at {offset} (expected {cursor}) before {label}"
                )
            cursor += size
        if cursor != self.capacity:
            raise AssertionError(f"pool tiles to {cursor}, capacity {self.capacity}")
        dead = np.ones(self.capacity, dtype=bool)
        hw = 0
        for handle in range(self._n_handles):
            if int(self.cap[handle]) == 0:
                continue
            lo = int(self.off[handle])
            n = int(self.length[handle])
            dead[lo : lo + n] = False
            hw = max(hw, lo + int(self.cap[handle]))
            window_leave = self.leave[lo : lo + n]
            window_depart = self.depart[lo : lo + n]
            holes = window_leave == DEAD_LEAVE
            if int(holes.sum()) != n - int(self.live[handle]):
                raise AssertionError(
                    f"handle {handle}: hole count != length - live"
                )
            if not np.all(np.isneginf(window_depart[holes])):
                raise AssertionError(f"handle {handle}: hole without depart sentinel")
            if np.any(np.isneginf(window_depart[~holes])):
                raise AssertionError(f"handle {handle}: live row with depart sentinel")
        if hw > self.high_water:
            raise AssertionError(
                f"high_water {self.high_water} below segment end {hw}"
            )
        if not np.all(np.isposinf(self.leave[dead])):
            raise AssertionError("dead slot without leave sentinel")
        if not np.all(np.isneginf(self.depart[dead])):
            raise AssertionError("dead slot without depart sentinel")
