"""City shard worker: the per-process side of the sharded city engine.

Protocol (engine → worker over a Pipe, frames over ShmRings):

- ``("tick", index, now, n_frames, inline)`` — drain exactly
  ``n_frames`` from the inbox (RSU-state frames install first, then
  move bundles), run the tick over owned RSUs.  With ``inline`` true
  (every tick that cannot change ownership — the shard map is fixed,
  so moves can be routed immediately), also partition and push the
  produced moves before replying ``("ticked", cpu_s, concurrent)`` —
  one Pipe round trip per tick carrying one scalar.  With ``inline``
  false (a rebalance-decision tick, i.e. the window boundary) the
  moves are *held* for the flush phase and the reply is
  ``("ticked", cpu_s, concurrent, indices, window_counts)``: the
  per-RSU loads summed worker-side over the closing window, which is
  exactly what the rebalancer consumes.  Ownership is constant within
  a window, so the local accumulate is well-defined.
- ``("flush", reassignments)`` — rebalance-decision ticks only: apply
  RSU→shard reassignments (the loser packs the RSU, RNG state
  included, into a FRAME_RSU_STATE addressed to the new owner), then
  partition the held moves by destination shard under the *updated*
  map and push one FRAME_MIGRATION per destination.  Reply
  ``("flushed", cpu_s)``.  Splitting tick and flush on these ticks is
  what makes a rebalance atomic: ownership changes are decided from
  the tick's loads and applied before any of that tick's moves are
  routed, so no frame is ever addressed to a stale owner and no RSU
  migrates mid-tick.
- ``("collect", n_frames)`` — drain leftovers (counting, not applying,
  their rows as in-flight), reply ``("result", payload)``.

Errors anywhere ship the traceback back as ``("error", tb)``; the
engine re-raises.
"""

from __future__ import annotations

import gc
import time
import traceback
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.city.engine import MoveBundle, build_shard_state
from repro.city.model import CitySpec
from repro.obs.trace import SpanRecorder, enable_tracing
from repro.city.topology import CityTopology
from repro.obs import metrics as obs_metrics
from repro.parallel.barrier import (
    FRAME_MIGRATION,
    FRAME_RSU_STATE,
    decode_shard_payload,
    encode_shard_payload,
)
from repro.parallel.worker import enable_worker_observability
from repro.streaming.shm import ShmRing


@dataclass
class CityWorkerContext:
    shard_index: int
    n_shards: int
    spec: CitySpec
    topology: CityTopology
    #: Global RSU indices this shard owns at start.
    owned: Tuple[int, ...]
    #: Initial RSU index → shard map (identical in every worker).
    shard_of: Tuple[int, ...]
    conn: object
    inbox: ShmRing
    outbox: ShmRing


def city_worker_main(ctx: CityWorkerContext) -> None:
    try:
        # Same policy as the serial engine loop: the tick path allocates
        # heavily but cycle-free, so cyclic GC is pure pause time — and a
        # pause in any one worker lands on the tick's critical path.
        gc.disable()
        _CityWorker(ctx).serve()
    except BaseException:  # ship the traceback; the engine re-raises
        try:
            ctx.conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


class _CityWorker:
    def __init__(self, ctx: CityWorkerContext) -> None:
        build_start = time.process_time()
        self.ctx = ctx
        self.index = ctx.shard_index
        self.obs_registry, self.obs_recorder = enable_worker_observability(
            ctx.spec.observability
        )
        if ctx.spec.profile and self.obs_recorder is not None:
            # The default span ring is sized for corridor runs; a city
            # profile needs every phase span of every tick (up to 8) to
            # survive until the end-of-run fold.
            self.obs_recorder = enable_tracing(
                SpanRecorder(capacity=8 * ctx.spec.n_ticks + 8)
            )
        self.shard = build_shard_state(ctx.spec, ctx.topology, ctx.owned)
        self.shard_of = np.asarray(ctx.shard_of, dtype=np.int64)
        #: Bundles destined to RSUs we own, buffered across the tick
        #: boundary (the intra-shard analogue of a migration frame).
        self.pending_local: List[MoveBundle] = []
        #: The last tick's moves, held between "tick" and "flush".
        self.held_moves: List[MoveBundle] = []
        #: Per-RSU load sums over the current rebalance window (reset at
        #: every decision tick, right after they are shipped).
        self.win_indices = None
        self.win_counts = None
        self.moves_produced = 0
        self.build_cpu_s = time.process_time() - build_start

    # ------------------------------------------------------------------
    def serve(self) -> None:
        self.ctx.conn.send(("ready", self.build_cpu_s))
        while True:
            message = self.ctx.conn.recv()
            op = message[0]
            if op == "tick":
                _, tick_index, now, n_frames, inline = message
                self._tick(tick_index, now, n_frames, inline)
            elif op == "flush":
                self._flush(message[1])
            elif op == "collect":
                self._collect(message[1])
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    def _drain(self, n_frames: int) -> List[Tuple[int, bytes]]:
        # The engine pushes every frame before the Pipe message that
        # announces them, so one drain must account for all of them.
        frames = self.ctx.inbox.drain()
        if len(frames) != n_frames:
            raise RuntimeError(
                f"city shard {self.index}: expected {n_frames} inbox "
                f"frames, drained {len(frames)}"
            )
        return frames

    def _tick(
        self, tick_index: int, now: float, n_frames: int, inline: bool
    ) -> None:
        cpu_start = time.process_time()
        inbound = self.pending_local
        self.pending_local = []
        # Install adopted RSUs before admitting any moves: a frame in
        # the same batch may carry vehicles bound for the new arrival.
        bundles: List[MoveBundle] = []
        for kind, buf in self._drain(n_frames):
            _, payload = decode_shard_payload(buf)
            if kind == FRAME_RSU_STATE:
                self.shard.adopt(payload)
            elif kind == FRAME_MIGRATION:
                bundles.append(payload)
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unexpected frame kind {kind}")
        inbound = inbound + bundles
        moves, (indices, counts) = self.shard.tick(tick_index, now, inbound)
        self.held_moves = moves
        self.moves_produced += sum(int(bundle[0].size) for bundle in moves)
        concurrent = int(counts.sum())
        # Ownership only changes across a window boundary, so within a
        # window the index vector is the *same cached array object*
        # (ShardState rebuilds it only on adopt/detach) and the loads
        # accumulate with one vector add.
        if indices is not self.win_indices:
            self.win_indices = indices
            self.win_counts = counts.copy()
        else:
            self.win_counts += counts
        if inline:
            # No ownership change possible this tick: route immediately
            # and fold the whole tick into one scalar-carrying reply.
            self._route_held([])
            self.ctx.conn.send(
                ("ticked", time.process_time() - cpu_start, concurrent)
            )
        else:
            window_indices, window_counts = self.win_indices, self.win_counts
            self.win_indices = None
            self.win_counts = None
            self.ctx.conn.send(
                (
                    "ticked",
                    time.process_time() - cpu_start,
                    concurrent,
                    window_indices,
                    window_counts,
                )
            )

    def _flush(self, reassignments: List[Tuple[int, int]]) -> None:
        cpu_start = time.process_time()
        self._route_held(reassignments)
        self.ctx.conn.send(("flushed", time.process_time() - cpu_start))

    def _route_held(self, reassignments: List[Tuple[int, int]]) -> None:
        for rsu_index, to_shard in reassignments:
            if (
                self.shard_of[rsu_index] == self.index
                and rsu_index in self.shard.rsus
            ):
                packed = self.shard.detach(rsu_index)
                self.ctx.outbox.push(
                    FRAME_RSU_STATE, encode_shard_payload(to_shard, packed)
                )
            self.shard_of[rsu_index] = to_shard

        moves = self.held_moves
        self.held_moves = []
        if moves:
            dst = np.concatenate([b[0] for b in moves])
            src = np.concatenate([b[1] for b in moves])
            ids = np.concatenate([b[2] for b in moves])
            depart = np.concatenate([b[3] for b in moves])
            leave = np.concatenate([b[4] for b in moves])
            shard_ids = self.shard_of[dst]
            # One stable sort splits the rows into per-shard contiguous
            # slices (cheaper than a mask + fancy-index per shard, and
            # row order within a shard is preserved, so the receiver's
            # (dst, src) lexsort sees the same bundle order either way).
            order = np.argsort(shard_ids, kind="stable")
            dst, src, ids = dst[order], src[order], ids[order]
            depart, leave = depart[order], leave[order]
            shard_sorted = shard_ids[order]
            bounds = np.searchsorted(
                shard_sorted, np.arange(self.ctx.n_shards + 1)
            )
            for shard in range(self.ctx.n_shards):
                lo, hi = int(bounds[shard]), int(bounds[shard + 1])
                if lo == hi:
                    continue
                bundle = (
                    dst[lo:hi],
                    src[lo:hi],
                    ids[lo:hi],
                    depart[lo:hi],
                    leave[lo:hi],
                )
                if shard == self.index:
                    self.pending_local.append(bundle)
                else:
                    self.ctx.outbox.push(
                        FRAME_MIGRATION, encode_shard_payload(shard, bundle)
                    )

    # ------------------------------------------------------------------
    def _collect(self, n_frames: int) -> None:
        in_flight = sum(int(b[0].size) for b in self.pending_local)
        for kind, buf in self._drain(n_frames):
            _, payload = decode_shard_payload(buf)
            if kind == FRAME_MIGRATION:
                in_flight += int(payload[0].size)
            elif kind == FRAME_RSU_STATE:
                # A final-tick rebalance landed here; adopt so the RSU
                # is reported exactly once, by its new owner.
                self.shard.adopt(payload)
        obs_encoded = None
        if self.obs_registry is not None:
            self.obs_registry.gauge("city.shard_rsus", shard=str(self.index)).set(
                len(self.shard.rsus)
            )
            if self.ctx.spec.profile and self.obs_recorder is not None:
                self.obs_recorder.fold_into(self.obs_registry)
            obs_encoded = self.obs_registry.snapshot().encode()
            obs_metrics.disable()
        self.ctx.conn.send(
            (
                "result",
                {
                    "rsus": self.shard.rsu_results(),
                    "produced": self.moves_produced,
                    "applied": self.shard.moves_applied,
                    "in_flight": in_flight,
                    "obs": obs_encoded,
                },
            )
        )
