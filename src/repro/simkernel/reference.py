"""Reference binary-heap event queue — the seed kernel, preserved.

This is the kernel the repository shipped with before the calendar
queue in :mod:`repro.simkernel.events`: a single ``heapq`` holding the
:class:`~repro.simkernel.events.Event` objects themselves, ordered by
their Python-level ``__lt__`` (which builds a ``(time, priority, seq)``
tuple per comparison), with lazy cancellation and a fresh allocation
per push.  It is kept in-tree, faithful to the seed implementation,
for two jobs:

- **Golden equivalence.**  The calendar queue must produce trajectories
  bit-identical to this heap for every scenario.  The kernel-equivalence
  tests run the same seeded corridor on both queues (via
  ``Simulator.queue_factory``) and compare warnings, latencies and RNG
  states exactly.
- **Honest baselines.**  ``benchmarks/perf_harness.py`` measures the
  calendar queue's speedup *against this heap on the same host*, so the
  BENCH_4 ratio metrics are not polluted by host-to-host variance.
  Faithfulness matters here: the seed heap pays a Python method call
  and two tuple allocations per sift comparison, which is precisely
  the overhead the overhaul removes — replacing it with something
  faster would flatter the baseline and understate nothing, overstate
  nothing, but measure the wrong thing.

It intentionally has **no** slab free list and **no** compaction — it
is the seed implementation of the queue contract.  The interface
matches :class:`repro.simkernel.events.EventQueue` exactly
(``pop_next`` / ``pop_next_until`` / ``pop_next_before`` /
``schedule`` / ``release`` / the introspection counters), so the
simulator can run on either without branching.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.simkernel.events import Event


class ReferenceEventQueue:
    """Binary heap of schedulable objects, seed-style.

    Cancellation is lazy (cancelled entries are skipped on pop); there
    is no compaction, so cancel-heavy workloads grow the heap without
    bound — exactly the behaviour the calendar queue fixes.
    """

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._seq = 0
        self._live = 0
        self._cancelled = 0
        # Introspection parity with the calendar queue (obs gauges).
        self.depth_peak = 0
        self.cancelled_peak = 0
        self.compactions = 0
        self.events_allocated = 0
        self.events_recycled = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, priority, label)
        self.events_allocated += 1
        heapq.heappush(self._heap, event)
        live = self._live + 1
        self._live = live
        if live > self.depth_peak:
            self.depth_peak = live
        return event

    def schedule(self, obj: Any, time: float, priority: int = 0) -> None:
        """Insert a kernel-owned schedulable (e.g. a coalesced tick
        group); stamps ``obj.time`` / ``obj.seq`` like the calendar
        queue does.  The object must be orderable against events
        (``sort_key`` / ``__lt__``)."""
        seq = self._seq
        self._seq = seq + 1
        obj.time = time
        obj.seq = seq
        obj._cancelled = False
        heapq.heappush(self._heap, obj)
        live = self._live + 1
        self._live = live
        if live > self.depth_peak:
            self.depth_peak = live

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, event: Any) -> None:
        if not event._cancelled:
            event._cancelled = True
            self._live -= 1
            cancelled = self._cancelled + 1
            self._cancelled = cancelled
            if cancelled > self.cancelled_peak:
                self.cancelled_peak = cancelled

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def _pop_live(self, limit: Optional[float], strict: bool) -> Any:
        heap = self._heap
        while heap:
            obj = heap[0]
            if obj._cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            if limit is not None and (
                obj.time >= limit if strict else obj.time > limit
            ):
                return None
            heapq.heappop(heap)
            self._live -= 1
            return obj
        return None

    def pop_next(self) -> Any:
        return self._pop_live(None, False)

    def pop_next_until(self, deadline: float) -> Any:
        return self._pop_live(deadline, False)

    def pop_next_before(self, deadline: float) -> Any:
        return self._pop_live(deadline, True)

    def pop(self) -> Event:
        obj = self._pop_live(None, False)
        if obj is None:
            raise IndexError("pop from an empty EventQueue")
        return obj

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap:
            if heap[0]._cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
                continue
            return heap[0].time
        return None

    def release(self, obj: Any) -> None:
        """No slab recycling in the reference kernel."""
