"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator whose ``yield`` values are
delays in simulated seconds.  This is the familiar SimPy-style coroutine
idiom, restricted to the single primitive (timed sleep) the CAD3
scenarios need: vehicles that transmit every 100 ms, consumers that poll
every 10 ms, RSUs that tick micro-batches every 50 ms.

Example
-------
>>> from repro.simkernel import Simulator, Process
>>> sim = Simulator()
>>> ticks = []
>>> def beacon():
...     for _ in range(3):
...         ticks.append(sim.now)
...         yield 0.1
>>> _ = Process(sim, beacon())
>>> _ = sim.run()
>>> ticks
[0.0, 0.1, 0.2]
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    INTERRUPTED = "interrupted"
    FAILED = "failed"


class Process:
    """Drive a generator on the simulator's clock.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.simkernel.simulator.Simulator`.
    generator:
        Generator yielding non-negative float delays (seconds).
    start_at:
        Absolute time of the first resumption; defaults to now.
    name:
        Label used in event traces and errors.
    """

    def __init__(
        self,
        sim: Any,
        generator: Generator[float, None, Any],
        start_at: Optional[float] = None,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.state = ProcessState.PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._event = sim.at(
            sim.now if start_at is None else start_at,
            self._resume,
            label=f"process:{self.name}",
        )

    @property
    def alive(self) -> bool:
        return self.state in (ProcessState.PENDING, ProcessState.RUNNING)

    def interrupt(self) -> None:
        """Stop the process before its next resumption."""
        if not self.alive:
            return
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None
        self._generator.close()
        self.state = ProcessState.INTERRUPTED

    def _resume(self) -> None:
        self.state = ProcessState.RUNNING
        self._event = None
        try:
            delay = next(self._generator)
        except StopIteration as stop:
            self.state = ProcessState.FINISHED
            self.result = stop.value
            return
        except BaseException as exc:  # surface the real failure site
            self.state = ProcessState.FAILED
            self.error = exc
            raise
        if delay is None or delay < 0:
            self.state = ProcessState.FAILED
            self.error = ValueError(
                f"process {self.name!r} yielded invalid delay {delay!r}"
            )
            raise self.error
        self._event = self.sim.after(
            float(delay), self._resume, label=f"process:{self.name}"
        )

    def __repr__(self) -> str:
        return f"Process(name={self.name!r}, state={self.state.value})"
