"""Deterministic discrete-event simulation kernel.

This package is the execution substrate for the CAD3 reproduction.  The
paper evaluates CAD3 on a physical two-PC testbed; we replace wall-clock
execution with a deterministic discrete-event simulator so that latency
and bandwidth experiments are reproducible bit-for-bit.

The public surface is small:

``Simulator``
    The event loop.  Schedule callbacks at absolute or relative simulated
    times, then ``run()`` / ``run_until()``.

``Process``
    A generator-based coroutine helper: ``yield delay`` suspends the
    process for ``delay`` simulated seconds.

``RngRegistry``
    Named, independently seeded ``numpy`` random generators, so that
    adding a new source of randomness never perturbs existing streams.
"""

from repro.simkernel.clock import SimClock
from repro.simkernel.events import Event, EventQueue
from repro.simkernel.process import Process, ProcessState
from repro.simkernel.reference import ReferenceEventQueue
from repro.simkernel.rng import RngRegistry, derive_seed
from repro.simkernel.simulator import (
    GroupRecurrence,
    Recurrence,
    SimulationError,
    Simulator,
)

__all__ = [
    "Event",
    "EventQueue",
    "GroupRecurrence",
    "Process",
    "ProcessState",
    "Recurrence",
    "ReferenceEventQueue",
    "RngRegistry",
    "SimClock",
    "SimulationError",
    "Simulator",
    "derive_seed",
]
