"""Event and event-queue primitives for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number is a global insertion counter, which makes ordering total and the
whole simulation deterministic: two events scheduled for the same instant
fire in the order they were scheduled (unless a priority says otherwise).

The queue is a **calendar queue** (a one-level timer wheel with an
unbounded dial): entries land in fixed-width time buckets that are kept
unsorted until the dial reaches them, so the steady-state cost per event
is one dict lookup and one list append instead of an O(log n) heap
sift.  This fits the workload — nearly every event in a scenario is a
periodic tick (vehicle produce at 100 ms, RSU poll at 50 ms) landing a
bucket or two ahead of the dial.  Two escape hatches keep the structure
fully general:

- entries scheduled *behind or inside* the already-activated bucket go
  to a small overflow heap that is merged entry-by-entry with the
  active bucket (events scheduled for "now" during a callback are the
  common case);
- buckets far in the future simply sit in the bucket dict until the
  dial gets there — there is no wheel wrap-around to manage.

Entries are plain ``(time, priority, seq, obj)`` tuples so every
comparison (bucket sort, overflow heap sift) happens in C without
calling back into ``Event.__lt__``.  ``obj`` is usually an
:class:`Event`; the simulator also schedules its coalesced tick groups
directly (any object with ``time``, ``seq``, ``callback`` and
``_cancelled`` attributes works).

Fired :class:`Event` objects are recycled through a small free list
(slab allocation): when the simulator finishes a callback and nobody
else holds a reference to the handle, the object is reinitialised for
the next ``push`` instead of being garbage.  Cancellation stays lazy
(O(1) flag set), but the queue now *compacts* when cancelled entries
outnumber live ones, so cancel-heavy workloads — mass vehicle stops,
failover storms — no longer grow the structure without bound.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    priority:
        Tie-breaker for events at the same time; lower fires first.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag, used in error messages and traces.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "_cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self._cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        tag = f" {self.label!r}" if self.label else ""
        state = " cancelled" if self._cancelled else ""
        return f"Event(t={self.time:.6f}{tag}{state})"


#: Queue entry: ``(time, priority, seq, obj)``.  ``seq`` is unique, so
#: tuple comparison never falls through to the trailing object.
Entry = Tuple[float, int, int, Any]

_NO_BUCKET = float("-inf")


class EventQueue:
    """Calendar queue of :class:`Event` objects (and kernel tick groups).

    Cancellation is lazy: cancelled entries stay in place and are
    skipped on pop, which keeps ``cancel`` O(1).  When cancelled
    entries outnumber live ones (past a small floor) the queue compacts
    in one pass, bounding memory under cancel-heavy workloads.

    ``bucket_width`` is the calendar's dial resolution.  The default
    matches the dominant tick cadence (the paper's 50 ms micro-batch);
    correctness does not depend on it, only the bucket fill factor.
    """

    #: Calendar bucket width in simulated seconds.
    BUCKET_WIDTH = 0.05
    #: Never compact below this many cancelled entries (avoids churn on
    #: tiny queues where rebuilding costs more than it saves).
    COMPACT_MIN = 512
    #: Free-list capacity for recycled Event slabs.
    SLAB_CAP = 1024

    def __init__(self, bucket_width: float = BUCKET_WIDTH) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive: {bucket_width}")
        self._inv_width = 1.0 / bucket_width
        #: Future buckets: dial index -> unsorted entry list.
        self._buckets: dict = {}
        #: Min-heap of dial indices with (possibly stale) buckets.
        self._bucket_keys: List[int] = []
        #: The activated bucket, sorted descending (pop from the end).
        self._current: List[Entry] = []
        self._current_key: float = _NO_BUCKET
        #: Entries that landed at or behind the activated bucket.
        self._overflow: List[Entry] = []
        self._seq = 0
        self._live = 0
        self._cancelled = 0
        self._free: List[Event] = []
        # Introspection for the obs layer and the perf harness.
        self.depth_peak = 0
        self.cancelled_peak = 0
        self.compactions = 0
        self.events_allocated = 0
        self.events_recycled = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        free = self._free
        seq = self._seq
        self._seq = seq + 1
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.label = label
            event._cancelled = False
            self.events_recycled += 1
        else:
            event = Event(time, seq, callback, priority, label)
            self.events_allocated += 1
        # _insert, inlined: this is the hottest write path in the kernel.
        key = int(time * self._inv_width)
        if key <= self._current_key:
            heapq.heappush(self._overflow, (time, priority, seq, event))
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [(time, priority, seq, event)]
                heapq.heappush(self._bucket_keys, key)
            else:
                bucket.append((time, priority, seq, event))
        live = self._live + 1
        self._live = live
        if live > self.depth_peak:
            self.depth_peak = live
        return event

    def schedule(self, obj: Any, time: float, priority: int = 0) -> None:
        """Insert a kernel-owned schedulable (e.g. a coalesced tick
        group).  ``obj`` must expose ``time``, ``seq``, ``callback`` and
        ``_cancelled``; the queue stamps the first two."""
        seq = self._seq
        self._seq = seq + 1
        obj.time = time
        obj.seq = seq
        obj._cancelled = False
        self._insert((time, priority, seq, obj))
        live = self._live + 1
        self._live = live
        if live > self.depth_peak:
            self.depth_peak = live

    def _insert(self, entry: Entry) -> None:
        key = int(entry[0] * self._inv_width)
        if key <= self._current_key:
            heapq.heappush(self._overflow, entry)
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [entry]
            heapq.heappush(self._bucket_keys, key)
        else:
            bucket.append(entry)

    # ------------------------------------------------------------------
    # Cancellation / compaction
    # ------------------------------------------------------------------
    def cancel(self, event: Any) -> None:
        if not event._cancelled:
            event._cancelled = True
            self._live -= 1
            cancelled = self._cancelled + 1
            self._cancelled = cancelled
            if cancelled > self.cancelled_peak:
                self.cancelled_peak = cancelled
            if cancelled >= self.COMPACT_MIN and cancelled > self._live:
                self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry in one pass.

        Also recounts ``len`` from the surviving entries, so the
        counters self-heal if an already-fired event was cancelled
        (which decrements ``_live`` with no entry to match).
        """
        remaining = 0
        current = [e for e in self._current if not e[3]._cancelled]
        self._current = current  # filter preserves the descending sort
        remaining += len(current)
        overflow = [e for e in self._overflow if not e[3]._cancelled]
        heapq.heapify(overflow)
        self._overflow = overflow
        remaining += len(overflow)
        buckets = {}
        for key, bucket in self._buckets.items():
            kept = [e for e in bucket if not e[3]._cancelled]
            if kept:
                buckets[key] = kept
                remaining += len(kept)
        self._buckets = buckets
        self._bucket_keys = list(buckets)
        heapq.heapify(self._bucket_keys)
        self._live = remaining
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def _advance_bucket(self) -> bool:
        """Activate the next non-empty future bucket.  Stale dial
        indices (emptied by a compaction) are skipped."""
        keys = self._bucket_keys
        buckets = self._buckets
        while keys:
            key = heapq.heappop(keys)
            bucket = buckets.pop(key, None)
            if bucket:
                bucket.sort(reverse=True)
                self._current = bucket
                self._current_key = key
                return True
        return False

    def _pop_live(self, limit: Optional[float], strict: bool) -> Any:
        """Remove and return the next live schedulable, or ``None``.

        With a ``limit``, entries beyond it are left in place:
        ``strict=False`` pops entries with ``time <= limit`` and
        ``strict=True`` only ``time < limit`` (the sharded engine's
        conservative barrier).
        """
        current = self._current
        overflow = self._overflow
        while True:
            if current:
                if overflow and overflow[0] < current[-1]:
                    entry = overflow[0]
                    from_overflow = True
                else:
                    entry = current[-1]
                    from_overflow = False
            elif overflow:
                entry = overflow[0]
                from_overflow = True
            else:
                if not self._advance_bucket():
                    return None
                current = self._current
                continue
            obj = entry[3]
            if obj._cancelled:
                if from_overflow:
                    heapq.heappop(overflow)
                else:
                    current.pop()
                self._cancelled -= 1
                continue
            if limit is not None and (
                entry[0] >= limit if strict else entry[0] > limit
            ):
                return None
            if from_overflow:
                heapq.heappop(overflow)
            else:
                current.pop()
            self._live -= 1
            return obj

    def pop_next(self) -> Any:
        """Remove and return the next live schedulable, or ``None`` if
        the queue is empty (the simulator's hot-loop primitive).

        This is ``_pop_live(None, False)`` with the limit checks and
        the overflow merge peeled out of the common case — when the
        overflow heap is empty (steady state: callbacks schedule ahead
        of the dial), each pop is one list index and one list pop.
        """
        current = self._current
        overflow = self._overflow
        while True:
            if current:
                if overflow:
                    break  # rare: merge with the overflow heap
                entry = current[-1]
                obj = entry[3]
                current.pop()
                if obj._cancelled:
                    self._cancelled -= 1
                    continue
                self._live -= 1
                return obj
            if overflow:
                break
            if not self._advance_bucket():
                return None
            current = self._current
        return self._pop_live(None, False)

    def pop_next_until(self, deadline: float) -> Any:
        """Like :meth:`pop_next`, but leaves entries with
        ``time > deadline`` in place and returns ``None``."""
        return self._pop_live(deadline, False)

    def pop_next_before(self, deadline: float) -> Any:
        """Like :meth:`pop_next`, but strictly before ``deadline``."""
        return self._pop_live(deadline, True)

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises ``IndexError`` if the queue is empty.
        """
        obj = self._pop_live(None, False)
        if obj is None:
            raise IndexError("pop from an empty EventQueue")
        return obj

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        current = self._current
        while True:
            overflow = self._overflow
            while current and current[-1][3]._cancelled:
                current.pop()
                self._cancelled -= 1
            while overflow and overflow[0][3]._cancelled:
                heapq.heappop(overflow)
                self._cancelled -= 1
            if current:
                if overflow and overflow[0] < current[-1]:
                    return overflow[0][0]
                return current[-1][0]
            if overflow:
                return overflow[0][0]
            if not self._advance_bucket():
                return None
            current = self._current

    # ------------------------------------------------------------------
    # Slab recycling
    # ------------------------------------------------------------------
    def release(self, obj: Any) -> None:
        """Return a fired event handle to the slab free list.

        Only plain :class:`Event` objects nobody else references are
        recycled: exactly 3 references reach this frame (the caller's
        local, our parameter, and ``getrefcount``'s own argument).  A
        handle still held by user code — a pending-cancel reference, a
        closure over its own event — fails the check and stays a normal
        garbage-collected object, so recycling is never observable.
        """
        if (
            type(obj) is Event
            and len(self._free) < self.SLAB_CAP
            and getrefcount(obj) == 3
        ):
            obj.callback = None
            obj.label = None
            self._free.append(obj)
