"""Event and event-queue primitives for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number is a global insertion counter, which makes ordering total and the
whole simulation deterministic: two events scheduled for the same instant
fire in the order they were scheduled (unless a priority says otherwise).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time at which the callback fires.
    priority:
        Tie-breaker for events at the same time; lower fires first.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag, used in error messages and traces.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "_cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self._cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        tag = f" {self.label!r}" if self.label else ""
        state = " cancelled" if self._cancelled else ""
        return f"Event(t={self.time:.6f}{tag}{state})"


class EventQueue:
    """Priority queue of :class:`Event` objects.

    Cancellation is lazy: cancelled events stay in the heap and are
    skipped on pop, which keeps ``cancel`` O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        event = Event(time, next(self._counter), callback, priority, label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises ``IndexError`` if the queue is empty.
        """
        self._drop_cancelled()
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
