"""Named, independently seeded random streams.

Every stochastic component in the reproduction (dataset generator, MAC
backoff, driver behaviour, ...) draws from its own named stream derived
from a single experiment seed.  Deriving sub-seeds from ``(seed, name)``
means adding a new random consumer never shifts the draws seen by
existing consumers — experiments stay reproducible as the code evolves.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit sub-seed from ``(root_seed, name)``.

    Uses SHA-256 rather than Python's ``hash`` so the value is stable
    across interpreter runs and versions.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def substream_name(*parts: object) -> str:
    """Canonical dotted name for a nested stream (``"vehicle.42"``).

    Shard workers and the single-process engine must spell stream names
    identically, or their draws diverge; routing every name through this
    helper keeps them aligned.
    """
    return ".".join(str(part) for part in parts)


class RngRegistry:
    """Factory and cache for named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self.root_seed, name)
            )
        return self._streams[name]

    def reset(self, name: str) -> np.random.Generator:
        """Recreate ``name``'s stream from its derived seed."""
        self._streams.pop(name, None)
        return self.stream(name)

    def state_of(self, name: str) -> dict:
        """Snapshot ``name``'s bit-generator state (picklable).

        Because streams are seeded from ``(root_seed, name)`` — never
        from creation order or a shared global — a snapshot taken in one
        process restores exactly in another, which is how a migrating
        vehicle's draw sequence survives a cross-shard handover.
        """
        return self.stream(name).bit_generator.state

    def restore(self, name: str, state: dict) -> np.random.Generator:
        """Restore ``name``'s stream to a snapshot from :meth:`state_of`."""
        generator = self.stream(name)
        generator.bit_generator.state = state
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return (
            f"RngRegistry(root_seed={self.root_seed}, "
            f"streams={sorted(self._streams)})"
        )
