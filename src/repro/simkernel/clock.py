"""Simulated clock.

Simulated time is a ``float`` number of seconds since the start of the
simulation.  The clock only ever moves forward; the :class:`Simulator`
advances it as events fire.  Keeping the clock in its own object (rather
than a bare attribute on the simulator) lets substrate components hold a
read-only view of time without holding the whole event loop.
"""

from __future__ import annotations


class SimClock:
    """Monotonically non-decreasing simulated time, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now * 1e3

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises ``ValueError`` if the move would go backwards — a
        violation of event-queue ordering and always a bug.
        """
        if timestamp < self._now:
            raise ValueError(
                f"clock cannot move backwards: at {self._now!r}, "
                f"asked to advance to {timestamp!r}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now!r})"
