"""The discrete-event simulator.

A :class:`Simulator` owns a :class:`~repro.simkernel.clock.SimClock` and
an :class:`~repro.simkernel.events.EventQueue` and runs callbacks in
timestamp order.  All CAD3 experiment scenarios are driven through this
loop, so a single seed fully determines every measurement.

Two scheduling paths exist for periodic work:

``every``
    The general recurrence: each firing is its own queue entry and each
    reschedule allocates a fresh one.  Fully flexible — callbacks may
    read any recurrence's ``next_time`` mid-tick and see exactly the
    per-event state.

``every_group``
    The coalesced recurrence for homogeneous tick storms (the paper's
    50 ms micro-batch polls, 100 ms vehicle beacons): recurrences with
    the *same interval and the same next-firing instant* share one queue
    entry.  When it fires, member callbacks run in registration order —
    which equals the ``(time, priority, seq)`` order N independent
    ``every`` recurrences would have fired in, because coalesced members
    were by construction scheduled in that order and callbacks never
    advance the clock.  The tick grid is the identical float recurrence
    ``next = now + interval``, so trajectories are bit-for-bit the same.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simkernel.clock import SimClock
from repro.simkernel.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Recurrence:
    """Handle for a periodic schedule created by :meth:`Simulator.every`.

    Calling the handle cancels the recurrence (it doubles as the
    zero-argument canceller that ``every`` historically returned).
    ``next_time`` exposes the absolute time of the next pending firing,
    which lets a periodic loop be suspended on one simulator and resumed
    on another at the exact same instant — interval recurrences
    accumulate ``now + interval`` in floating point, so the next firing
    cannot be recomputed from the phase alone.
    """

    __slots__ = ("_queue", "_state")

    def __init__(self, queue: Any, state: dict) -> None:
        self._queue = queue
        self._state = state

    @property
    def next_time(self) -> Optional[float]:
        """Absolute time of the next firing, or ``None`` if finished."""
        if self._state["cancelled"]:
            return None
        event = self._state["event"]
        if event is None or event.cancelled:
            return None
        return event.time

    def cancel(self) -> None:
        self._state["cancelled"] = True
        event = self._state["event"]
        if event is not None:
            self._queue.cancel(event)

    def __call__(self) -> None:
        self.cancel()


class _GroupMember:
    """One recurrence coalesced into a :class:`_TickGroup`."""

    __slots__ = ("callback", "until", "label", "cancelled", "group")

    def __init__(
        self,
        callback: Callable[[], Any],
        until: Optional[float],
        label: Optional[str],
    ) -> None:
        self.callback = callback
        self.until = until
        self.label = label
        self.cancelled = False
        #: The group currently carrying this member; ``None`` once the
        #: member has fired for the last time (or never joined one).
        self.group: Optional["_TickGroup"] = None


class GroupRecurrence:
    """Handle for a coalesced recurrence from :meth:`Simulator.every_group`.

    Duck-types :class:`Recurrence`: calling it cancels the member, and
    ``next_time`` reports the group's next firing instant (which *is*
    the member's, by the coalescing invariant).  One deliberate
    difference, documented in the determinism contract: read from inside
    a *sibling member's* callback mid-dispatch, ``next_time`` still
    reports the instant currently being dispatched (the group
    reschedules once, after all members ran), where N independent
    ``every`` handles would already show ``now + interval`` for members
    that fired earlier in the same instant.  Settled (post-tick) state
    is identical.
    """

    __slots__ = ("_member",)

    def __init__(self, member: _GroupMember) -> None:
        self._member = member

    @property
    def next_time(self) -> Optional[float]:
        """Absolute time of the next firing, or ``None`` if finished."""
        member = self._member
        if member.cancelled or member.group is None:
            return None
        return member.group.time

    def cancel(self) -> None:
        member = self._member
        if member.cancelled:
            return
        member.cancelled = True
        group = member.group
        if group is None:
            return
        group.live -= 1
        if group.live == 0 and not group.dispatching:
            group.sim._drop_group(group)

    def __call__(self) -> None:
        self.cancel()


#: Bucket size past which an interval's groups get a time-keyed index.
#: Below it a linear scan over a handful of groups beats dict upkeep;
#: above it (city-scale churn can phase-split one interval into dozens
#: of groups) registration and removal must stay O(1).
INDEX_THRESHOLD = 8


class _IntervalBucket:
    """The live tick groups sharing one interval.

    Starts as a plain list (registration scans it for a group whose
    next firing instant is bit-equal).  Once the bucket outgrows
    :data:`INDEX_THRESHOLD` it converts — permanently — to a dict keyed
    by next firing time, which is sound because the coalescing protocol
    guarantees at most one live group per ``(interval, time)``: a
    registration matching an existing instant joins that group, and a
    reschedule landing on an occupied instant merges into it (the epoch
    scan) instead of co-existing.
    """

    __slots__ = ("groups", "by_time")

    def __init__(self) -> None:
        self.groups: List["_TickGroup"] = []
        self.by_time: Optional[Dict[float, "_TickGroup"]] = None

    def __len__(self) -> int:
        if self.by_time is not None:
            return len(self.by_time)
        return len(self.groups)

    def find(
        self, time: float, exclude: Optional["_TickGroup"] = None
    ) -> Optional["_TickGroup"]:
        if self.by_time is not None:
            group = self.by_time.get(time)
            if group is not None and group is not exclude:
                return group
            return None
        for group in self.groups:
            if group is not exclude and group.time == time:
                return group
        return None

    def add(self, group: "_TickGroup") -> None:
        """Register ``group`` under its (already stamped) ``time``."""
        if self.by_time is not None:
            self.by_time[group.time] = group
            return
        self.groups.append(group)
        if len(self.groups) > INDEX_THRESHOLD:
            self.by_time = {g.time: g for g in self.groups}
            self.groups = []

    def discard(self, group: "_TickGroup") -> None:
        if self.by_time is not None:
            if self.by_time.get(group.time) is group:
                del self.by_time[group.time]
            return
        try:
            self.groups.remove(group)
        except ValueError:
            pass

    def reindex(self, group: "_TickGroup", old_time: float) -> None:
        """Move ``group``'s index entry after a reschedule.

        A no-op while the bucket is list-backed — identity membership
        doesn't change when a group's time does.
        """
        if self.by_time is None:
            return
        if self.by_time.get(old_time) is group:
            del self.by_time[old_time]
        self.by_time[group.time] = group


class _TickGroup:
    """A coalesced set of recurrences sharing ``(interval, next_fire)``.

    The group itself is the queue schedulable: the :class:`EventQueue`
    stamps ``time`` / ``seq`` on insert and honours ``_cancelled``.
    Dispatch fires member callbacks in registration order, then
    reschedules the whole group at ``time + interval`` — one queue
    operation and zero allocations per tick, no matter how many members.
    """

    __slots__ = (
        "time",
        "seq",
        "callback",
        "_cancelled",
        "sim",
        "interval",
        "members",
        "live",
        "dispatching",
        "_fire_n",
        "_epoch",
    )

    def __init__(self, sim: "Simulator", interval: float) -> None:
        self.sim = sim
        self.interval = interval
        self.members: List[_GroupMember] = []
        #: Count of non-cancelled members in ``members``.
        self.live = 0
        self.dispatching = False
        self._fire_n = 0
        #: The simulator's group-creation epoch last seen by this group;
        #: while it is unchanged, no phase-aligned group can have
        #: appeared, so dispatch skips the collision scan entirely.
        self._epoch = 0
        self.callback = self._dispatch
        # Stamped by EventQueue.schedule().
        self.time = 0.0
        self.seq = 0
        self._cancelled = False

    #: Groups always schedule at default priority; the class attribute
    #: (legal alongside ``__slots__``) keeps the ordering protocol
    #: below compatible with :class:`Event` in the reference heap.
    priority = 0

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: Any) -> bool:
        return self.sort_key() < other.sort_key()

    def _dispatch(self) -> None:
        sim = self.sim
        members = self.members
        now = self.time
        # Members appended *at this instant* during dispatch (a callback
        # starting a recurrence with ``start=now``) extend the firing
        # window via ``_fire_n``; members joining for a later instant do
        # not fire this tick.
        self.dispatching = True
        self._fire_n = len(members)
        i = 0
        while i < self._fire_n:
            member = members[i]
            i += 1
            if not member.cancelled:
                member.callback()
        self.dispatching = False

        next_time = now + self.interval
        drop = False
        for member in members:
            if member.cancelled or (
                member.until is not None and next_time >= member.until
            ):
                drop = True
                break
        if drop:
            survivors: List[_GroupMember] = []
            for member in members:
                if member.cancelled:
                    member.group = None
                elif member.until is not None and next_time >= member.until:
                    member.group = None  # fired for the last time
                else:
                    survivors.append(member)
            if not survivors:
                self.members = []
                self.live = 0
                sim._remove_group(self)
                return
            self.members = survivors
            self.live = len(survivors)

        if sim._group_epoch != self._epoch:
            # A group was created somewhere since our last tick — it may
            # be phase-aligned with us (e.g. an RSU restart inside a
            # fault callback).  It carries an earlier sequence number
            # than our reschedule would, so merging *into* it — its
            # members first, ours appended — reproduces the order
            # independent ``every`` events would fire in.
            self._epoch = sim._group_epoch
            other = sim._find_group(self.interval, next_time, self)
            if other is not None:
                for member in self.members:
                    member.group = other
                other.members.extend(self.members)
                other.live += self.live
                self.members = []
                self.live = 0
                sim._remove_group(self)
                return
        sim.queue.schedule(self, next_time)
        sim._reindex_group(self, now)

    def __repr__(self) -> str:
        return (
            f"TickGroup(t={self.time:.6f}, interval={self.interval}, "
            f"members={self.live}/{len(self.members)})"
        )


class Simulator:
    """Deterministic discrete-event loop.

    Parameters
    ----------
    start:
        Initial simulated time (seconds).
    max_events:
        Safety valve: ``run`` raises :class:`SimulationError` after this
        many events, catching accidental infinite self-scheduling loops.
        A coalesced group firing counts as one event regardless of its
        member count.
    queue:
        Optional queue instance (defaults to a fresh
        ``queue_factory()``).  The kernel-equivalence tests inject the
        reference heap here.
    """

    #: Class-level queue constructor — tests swap in
    #: :class:`repro.simkernel.reference.ReferenceEventQueue` to run the
    #: same scenario on the pre-overhaul kernel.
    queue_factory = EventQueue

    #: When ``False``, :meth:`every_group` degrades to plain
    #: :meth:`every` — combined with ``queue_factory`` this reproduces
    #: the pre-overhaul kernel exactly, which is what the
    #: kernel-equivalence tests and the BENCH_4 baseline measure
    #: against.
    coalesce_ticks = True

    #: When ``True``, ``run``/``run_until``/``run_before`` use the
    #: seed's peek-then-step structure (a ``peek_time`` plus a ``pop``
    #: per event, clock advanced through the full ``advance_to`` call)
    #: instead of the tight ``_drain`` loop.  Perf-baseline only: the
    #: event order, and therefore every trajectory, is identical.
    legacy_loop = False

    def __init__(
        self,
        start: float = 0.0,
        max_events: int = 50_000_000,
        queue: Optional[Any] = None,
    ) -> None:
        self.clock = SimClock(start)
        self.queue = queue if queue is not None else self.queue_factory()
        self.max_events = max_events
        self._events_fired = 0
        self._running = False
        #: Live coalesced tick groups, bucketed by interval.  New
        #: registrations look up their interval's bucket for a group
        #: whose next firing instant is bit-equal to theirs —
        #: recurrences coalesce only on exact float phase.  Small
        #: buckets are scanned linearly; past :data:`INDEX_THRESHOLD`
        #: a bucket indexes by firing time so churn-heavy workloads
        #: (many phase-split groups per interval) keep O(1)
        #: registration and removal.
        self._groups: Dict[float, _IntervalBucket] = {}
        #: Bumped whenever a new group is created; groups compare it to
        #: their own snapshot to decide whether a phase-collision scan
        #: is needed at reschedule time.
        self._group_epoch = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.clock._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}; clock is already "
                f"at {self.clock.now!r}"
            )
        return self.queue.push(time, callback, priority, label)

    def after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.queue.push(self.clock._now + delay, callback, priority, label)

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        start: Optional[float] = None,
        until: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Recurrence:
        """Schedule ``callback`` periodically.

        The first firing is at ``start`` (defaulting to ``now +
        interval``); subsequent firings occur every ``interval`` seconds
        until ``until`` (exclusive) or until the returned canceller is
        called.

        Returns
        -------
        A :class:`Recurrence` — calling it stops the recurrence, and its
        ``next_time`` property reports the next pending firing.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval!r}")
        state = {"cancelled": False, "event": None}

        def fire() -> None:
            if state["cancelled"]:
                return
            callback()
            next_time = self.clock.now + interval
            if until is None or next_time < until:
                state["event"] = self.at(next_time, fire, label=label)
            else:
                state["event"] = None

        first = self.clock.now + interval if start is None else start
        if until is None or first < until:
            state["event"] = self.at(first, fire, label=label)

        return Recurrence(self.queue, state)

    def every_group(
        self,
        interval: float,
        callback: Callable[[], Any],
        start: Optional[float] = None,
        until: Optional[float] = None,
        label: Optional[str] = None,
    ) -> GroupRecurrence:
        """Schedule ``callback`` periodically, coalescing with other
        ``every_group`` recurrences that share the same ``interval`` and
        the same (bit-equal) next firing instant.

        Firing times are the identical float grid ``every`` produces
        (``first = start`` or ``now + interval``, then ``next = now +
        interval`` after each firing), and member callbacks run in
        registration order — which is exactly the ``(time, priority,
        seq)`` order N independent ``every`` recurrences would fire in.
        The win is mechanical: one queue entry and one reschedule per
        tick for the whole group, instead of one allocation + heap
        operation per member per tick.

        Returns
        -------
        A :class:`GroupRecurrence`, duck-typing :class:`Recurrence`
        (callable canceller + ``next_time``).
        """
        if not self.coalesce_ticks:
            return self.every(interval, callback, start, until, label)
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval!r}")
        now = self.clock.now
        first = now + interval if start is None else start
        member = _GroupMember(callback, until, label)
        if until is not None and first >= until:
            return GroupRecurrence(member)  # never fires
        if first < now:
            raise SimulationError(
                f"cannot schedule event at {first!r}; clock is already "
                f"at {now!r}"
            )
        bucket = self._groups.get(interval)
        if bucket is None:
            bucket = self._groups[interval] = _IntervalBucket()
        group = bucket.find(first)
        if group is not None:
            group.members.append(member)
            group.live += 1
            member.group = group
            if group.dispatching:
                # Joined the instant being dispatched right now
                # (e.g. ``start=now`` from inside a member
                # callback): fire it this tick, in arrival order,
                # as ``every`` would.
                group._fire_n += 1
            return GroupRecurrence(member)
        group = _TickGroup(self, interval)
        group.members.append(member)
        group.live = 1
        member.group = group
        self._group_epoch += 1
        group._epoch = self._group_epoch
        # Schedule first (the queue stamps ``group.time``), then index
        # under the stamped instant.
        self.queue.schedule(group, first)
        bucket.add(group)
        return GroupRecurrence(member)

    def _find_group(
        self, interval: float, time: float, exclude: _TickGroup
    ) -> Optional[_TickGroup]:
        """A live group (other than ``exclude``) at ``(interval, time)``.

        Only consulted when the group-creation epoch moved: two
        pre-existing groups with equal intervals keep a constant phase
        difference, so phase collisions can only be introduced by a
        fresh registration.
        """
        bucket = self._groups.get(interval)
        if bucket is None:
            return None
        group = bucket.find(time, exclude)
        if group is not None and group.live:
            return group
        return None

    def _remove_group(self, group: _TickGroup) -> None:
        """Drop a finished group from its interval bucket."""
        bucket = self._groups.get(group.interval)
        if bucket is not None:
            bucket.discard(group)
            if not len(bucket):
                del self._groups[group.interval]

    def _reindex_group(self, group: _TickGroup, old_time: float) -> None:
        """Refresh a rescheduled group's bucket entry (indexed buckets)."""
        bucket = self._groups.get(group.interval)
        if bucket is not None:
            bucket.reindex(group, old_time)

    def _drop_group(self, group: _TickGroup) -> None:
        """Remove a group whose members all cancelled between ticks."""
        self._remove_group(group)
        self.queue.cancel(group)
        group.members = []

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty.
        """
        queue = self.queue
        obj = queue.pop_next()
        if obj is None:
            return False
        self.clock.advance_to(obj.time)
        self._events_fired += 1
        if self._events_fired > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                f"likely a runaway scheduling loop (last: {obj!r})"
            )
        obj.callback()
        queue.release(obj)
        return True

    def _legacy_drain(self, deadline: Optional[float], strict: bool) -> None:
        """The seed run loop: peek, bounds-check, step — per event.

        Kept for the BENCH_4 baseline mode (``legacy_loop``): the seed
        paid a ``peek_time`` (one lazy-cancel scan) *and* a ``pop``
        (another) per event, plus the full ``advance_to`` method call.
        Identical event order; only the constant factors differ.
        """
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or (
                deadline is not None
                and (next_time >= deadline if strict else next_time > deadline)
            ):
                break
            self.step()

    def _drain(self, deadline: Optional[float], strict: bool) -> None:
        """Shared run loop: pop-advance-fire-release until exhausted.

        The queue method and counters are bound to locals — at ~1M
        events/s every attribute lookup in this loop is measurable.
        """
        if self.legacy_loop:
            self._legacy_drain(deadline, strict)
            return
        queue = self.queue
        if deadline is None:
            pop = queue.pop_next
        elif strict:
            pop = partial(queue.pop_next_before, deadline)
        else:
            pop = partial(queue.pop_next_until, deadline)
        release = queue.release
        clock = self.clock
        fired = self._events_fired
        max_events = self.max_events
        try:
            while True:
                obj = pop()
                if obj is None:
                    break
                # clock.advance_to, inlined: the queue's pop order makes
                # time monotonic, but keep the invariant check — a
                # backwards jump is always a kernel bug.
                time = obj.time
                if type(time) is not float:
                    time = float(time)  # advance_to coerced; keep doing so
                if time < clock._now:
                    clock.advance_to(time)  # raises with the full message
                clock._now = time
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        f"likely a runaway scheduling loop (last: {obj!r})"
                    )
                obj.callback()
                release(obj)
        finally:
            self._events_fired = fired

    def run(self) -> float:
        """Run until the event queue drains.  Returns the final time."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            self._drain(None, False)
        finally:
            self._running = False
        return self.clock.now

    def run_until(self, deadline: float) -> float:
        """Run events with ``time <= deadline``; then advance the clock
        to ``deadline`` and return it."""
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline!r} is before current time {self.clock.now!r}"
            )
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            self._drain(deadline, False)
        finally:
            self._running = False
        self.clock.advance_to(deadline)
        return self.clock.now

    def run_before(self, deadline: float) -> float:
        """Run events with ``time < deadline`` (strictly); then advance
        the clock to ``deadline`` and return it.

        This is the conservative-synchronization primitive used by the
        sharded engine: a worker drains everything strictly before a
        barrier, leaving events *at* the barrier instant (micro-batch
        ticks, injected messages) to fire in the next window so that
        barrier-time injections land before them in simulated order.
        """
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline!r} is before current time {self.clock.now!r}"
            )
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            self._drain(deadline, True)
        finally:
            self._running = False
        self.clock.advance_to(deadline)
        return self.clock.now

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.clock.now:.6f}, pending={len(self.queue)}, "
            f"fired={self._events_fired})"
        )
