"""The discrete-event simulator.

A :class:`Simulator` owns a :class:`~repro.simkernel.clock.SimClock` and
an :class:`~repro.simkernel.events.EventQueue` and runs callbacks in
timestamp order.  All CAD3 experiment scenarios are driven through this
loop, so a single seed fully determines every measurement.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simkernel.clock import SimClock
from repro.simkernel.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Recurrence:
    """Handle for a periodic schedule created by :meth:`Simulator.every`.

    Calling the handle cancels the recurrence (it doubles as the
    zero-argument canceller that ``every`` historically returned).
    ``next_time`` exposes the absolute time of the next pending firing,
    which lets a periodic loop be suspended on one simulator and resumed
    on another at the exact same instant — interval recurrences
    accumulate ``now + interval`` in floating point, so the next firing
    cannot be recomputed from the phase alone.
    """

    __slots__ = ("_queue", "_state")

    def __init__(self, queue: EventQueue, state: dict) -> None:
        self._queue = queue
        self._state = state

    @property
    def next_time(self) -> Optional[float]:
        """Absolute time of the next firing, or ``None`` if finished."""
        if self._state["cancelled"]:
            return None
        event = self._state["event"]
        if event is None or event.cancelled:
            return None
        return event.time

    def cancel(self) -> None:
        self._state["cancelled"] = True
        event = self._state["event"]
        if event is not None:
            self._queue.cancel(event)

    def __call__(self) -> None:
        self.cancel()


class Simulator:
    """Deterministic discrete-event loop.

    Parameters
    ----------
    start:
        Initial simulated time (seconds).
    max_events:
        Safety valve: ``run`` raises :class:`SimulationError` after this
        many events, catching accidental infinite self-scheduling loops.
    """

    def __init__(self, start: float = 0.0, max_events: int = 50_000_000) -> None:
        self.clock = SimClock(start)
        self.queue = EventQueue()
        self.max_events = max_events
        self._events_fired = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {time!r}; clock is already "
                f"at {self.clock.now!r}"
            )
        return self.queue.push(time, callback, priority, label)

    def after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.queue.push(self.clock.now + delay, callback, priority, label)

    def every(
        self,
        interval: float,
        callback: Callable[[], Any],
        start: Optional[float] = None,
        until: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Callable[[], None]:
        """Schedule ``callback`` periodically.

        The first firing is at ``start`` (defaulting to ``now +
        interval``); subsequent firings occur every ``interval`` seconds
        until ``until`` (exclusive) or until the returned canceller is
        called.

        Returns
        -------
        A :class:`Recurrence` — calling it stops the recurrence, and its
        ``next_time`` property reports the next pending firing.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval!r}")
        state = {"cancelled": False, "event": None}

        def fire() -> None:
            if state["cancelled"]:
                return
            callback()
            next_time = self.clock.now + interval
            if until is None or next_time < until:
                state["event"] = self.at(next_time, fire, label=label)
            else:
                state["event"] = None

        first = self.clock.now + interval if start is None else start
        if until is None or first < until:
            state["event"] = self.at(first, fire, label=label)

        return Recurrence(self.queue, state)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty.
        """
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        self._events_fired += 1
        if self._events_fired > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                f"likely a runaway scheduling loop (last: {event!r})"
            )
        event.callback()
        return True

    def run(self) -> float:
        """Run until the event queue drains.  Returns the final time."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            while self.step():
                pass
        finally:
            self._running = False
        return self.clock.now

    def run_until(self, deadline: float) -> float:
        """Run events with ``time <= deadline``; then advance the clock
        to ``deadline`` and return it."""
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline!r} is before current time {self.clock.now!r}"
            )
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            while True:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > deadline:
                    break
                self.step()
        finally:
            self._running = False
        self.clock.advance_to(deadline)
        return self.clock.now

    def run_before(self, deadline: float) -> float:
        """Run events with ``time < deadline`` (strictly); then advance
        the clock to ``deadline`` and return it.

        This is the conservative-synchronization primitive used by the
        sharded engine: a worker drains everything strictly before a
        barrier, leaving events *at* the barrier instant (micro-batch
        ticks, injected messages) to fire in the next window so that
        barrier-time injections land before them in simulated order.
        """
        if deadline < self.clock.now:
            raise SimulationError(
                f"deadline {deadline!r} is before current time {self.clock.now!r}"
            )
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            while True:
                next_time = self.queue.peek_time()
                if next_time is None or next_time >= deadline:
                    break
                self.step()
        finally:
            self._running = False
        self.clock.advance_to(deadline)
        return self.clock.now

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.clock.now:.6f}, pending={len(self.queue)}, "
            f"fired={self._events_fired})"
        )
