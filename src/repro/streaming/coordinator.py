"""Consumer-group coordination: partition assignment and rebalance.

Kafka divides a topic's partitions among the live members of a
consumer group so each record is processed once per group.  The paper
leans on this for pipeline parallelism ("we assign three partitions
for each topic to speed up reading and writing"); this module gives
the substrate the same semantics:

- members join a group for a set of topics;
- the coordinator assigns partitions round-robin over members (sorted
  by member id, deterministically);
- every join or leave bumps the group *generation*; members discover
  the rebalance on their next poll and refetch their assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class GroupState:
    """Book-keeping for one consumer group."""

    generation: int = 0
    members: List[str] = field(default_factory=list)
    topics: Dict[str, int] = field(default_factory=dict)  # topic -> partitions
    assignment: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)


class GroupCoordinator:
    """Assign topic partitions to group members."""

    def __init__(self) -> None:
        self._groups: Dict[str, GroupState] = {}

    def _rebalance(self, state: GroupState) -> None:
        state.generation += 1
        members = sorted(state.members)
        state.assignment = {member: [] for member in members}
        if not members:
            return
        all_partitions = [
            (topic, partition)
            for topic in sorted(state.topics)
            for partition in range(state.topics[topic])
        ]
        for index, target in enumerate(all_partitions):
            state.assignment[members[index % len(members)]].append(target)

    def join(
        self,
        group: str,
        member_id: str,
        topics: Dict[str, int],
    ) -> int:
        """Add (or re-register) a member; returns the new generation.

        ``topics`` maps topic name to its partition count; the group's
        topic set is the union of what members subscribe to.
        """
        state = self._groups.setdefault(group, GroupState())
        if member_id not in state.members:
            state.members.append(member_id)
        for topic, partitions in topics.items():
            existing = state.topics.get(topic)
            if existing is not None and existing != partitions:
                raise ValueError(
                    f"group {group!r} saw topic {topic!r} with "
                    f"{existing} partitions, now {partitions}"
                )
            state.topics[topic] = partitions
        self._rebalance(state)
        return state.generation

    def leave(self, group: str, member_id: str) -> int:
        """Remove a member; returns the new generation."""
        state = self._groups.get(group)
        if state is None or member_id not in state.members:
            raise KeyError(f"member {member_id!r} is not in group {group!r}")
        state.members.remove(member_id)
        self._rebalance(state)
        return state.generation

    def generation(self, group: str) -> int:
        state = self._groups.get(group)
        return state.generation if state else 0

    def assignment(self, group: str, member_id: str) -> List[Tuple[str, int]]:
        """The member's current (topic, partition) list."""
        state = self._groups.get(group)
        if state is None or member_id not in state.assignment:
            raise KeyError(f"member {member_id!r} is not in group {group!r}")
        return list(state.assignment[member_id])

    def members(self, group: str) -> List[str]:
        state = self._groups.get(group)
        return sorted(state.members) if state else []
