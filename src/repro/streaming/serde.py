"""Serialization for the streaming substrate.

The paper implements a custom "serializer and deserializer to send and
read the vehicular data" on top of Kafka; telemetry packets are ~200
bytes.  JSON of the Table II fields lands in that range, so
:class:`JsonSerde` is the default throughout.
"""

from __future__ import annotations

import json
from typing import Any, Optional


class SerdeError(ValueError):
    """Payload could not be (de)serialized."""


class Serde:
    """Serializer/deserializer interface."""

    def serialize(self, value: Any) -> bytes:
        raise NotImplementedError

    def deserialize(self, payload: bytes) -> Any:
        raise NotImplementedError


class JsonSerde(Serde):
    """Compact JSON with deterministic key order."""

    def serialize(self, value: Any) -> bytes:
        try:
            return json.dumps(
                value, separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise SerdeError(f"value is not JSON-serializable: {exc}") from exc

    def deserialize(self, payload: bytes) -> Any:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerdeError(f"payload is not valid JSON: {exc}") from exc


class RawSerde(Serde):
    """Pass-through for pre-encoded bytes."""

    def serialize(self, value: Any) -> bytes:
        if isinstance(value, bytes):
            return value
        if isinstance(value, str):
            return value.encode("utf-8")
        raise SerdeError(f"RawSerde expects bytes or str, got {type(value)}")

    def deserialize(self, payload: bytes) -> Any:
        return payload


def serialize_key(serde: Serde, key: Any) -> Optional[bytes]:
    """Serialize an optional record key."""
    if key is None:
        return None
    return serde.serialize(key)
