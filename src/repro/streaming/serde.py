"""Serialization for the streaming substrate.

The paper implements a custom "serializer and deserializer to send and
read the vehicular data" on top of Kafka; telemetry packets are ~200
bytes.  JSON of the Table II fields lands in that range, so
:class:`JsonSerde` is the default throughout.

For the hot path there is also :class:`FlatStructSerde`: a
schema-aware fixed-layout binary encoding (struct packing) that cuts
both the per-record CPU cost (no ``json.dumps(sort_keys=True)``) and
the wire size (well under half of the JSON bytes).  Binary payloads are tagged with a magic
byte that can never begin a JSON document, so every struct serde
transparently falls back to JSON for foreign payloads — mixed-format
topics deserialize correctly.  The CAD3 wire schemas built on this
live in :mod:`repro.core.wire` (the streaming layer stays
schema-agnostic).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional, Sequence, Tuple

import numpy as np


class SerdeError(ValueError):
    """Payload could not be (de)serialized."""


class Serde:
    """Serializer/deserializer interface."""

    def serialize(self, value: Any) -> bytes:
        raise NotImplementedError

    def deserialize(self, payload: bytes) -> Any:
        raise NotImplementedError


class JsonSerde(Serde):
    """Compact JSON with deterministic key order."""

    def serialize(self, value: Any) -> bytes:
        try:
            return json.dumps(
                value, separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise SerdeError(f"value is not JSON-serializable: {exc}") from exc

    def deserialize(self, payload: bytes) -> Any:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerdeError(f"payload is not valid JSON: {exc}") from exc


#: First byte of every struct-encoded payload.  JSON documents start
#: with one of ``{ [ " 0-9 - t f n`` or whitespace, never 0xC3, so the
#: two formats are distinguishable from the first byte.
STRUCT_MAGIC = 0xC3

#: Layout version, bumped on any schema change.
STRUCT_VERSION = 1


class _Fallback(Exception):
    """Internal: value does not fit the fixed schema; use JSON."""


#: Field kinds understood by :class:`FlatStructSerde`.
FIELD_PLAIN = "plain"  # value stored as-is (int or float)
FIELD_ENUM = "enum"  # small string vocabulary stored as uint8 index
FIELD_OPT_FLOAT = "opt_float"  # float or None (None stored as NaN)
FIELD_OPT_INT = "opt_int"  # small int or None (None stored as -1)

#: struct format code -> numpy dtype string (little-endian, packed).
_NUMPY_CODES = {
    "b": "i1",
    "B": "u1",
    "h": "<i2",
    "H": "<u2",
    "i": "<i4",
    "I": "<u4",
    "q": "<i8",
    "Q": "<u8",
    "f": "<f4",
    "d": "<f8",
}


class FlatStructSerde(Serde):
    """Fixed-layout binary serde for flat dicts, with JSON fallback.

    Parameters
    ----------
    fields:
        ``(key, struct_code, kind, vocab)`` tuples in wire order.
        ``kind`` is one of the ``FIELD_*`` constants; ``vocab`` is the
        value tuple for :data:`FIELD_ENUM` fields (index encoded as the
        struct code, normally ``"B"``), else ``None``.

    ``serialize`` falls back to compact JSON whenever the value is not
    a dict matching the schema (missing key, out-of-range int, unknown
    enum string); ``deserialize`` dispatches on the magic byte.  A
    topic encoded with this serde therefore interoperates with plain
    :class:`JsonSerde` producers and consumers in both directions.
    """

    def __init__(
        self,
        fields: Sequence[Tuple[str, str, str, Optional[tuple]]],
    ) -> None:
        self.fields = tuple(fields)
        self._struct = struct.Struct(
            "<BB" + "".join(code for _, code, _, _ in self.fields)
        )
        self._json = JsonSerde()
        self._encoders = []
        self._decoders = []
        for key, _code, kind, vocab in self.fields:
            if kind == FIELD_ENUM:
                index = {value: i for i, value in enumerate(vocab)}
                self._encoders.append(self._enum_encoder(key, index))
                self._decoders.append(self._enum_decoder(vocab))
            elif kind == FIELD_OPT_FLOAT:
                self._encoders.append(self._opt_float_encoder(key))
                self._decoders.append(self._opt_float_decoder())
            elif kind == FIELD_OPT_INT:
                self._encoders.append(self._opt_int_encoder(key))
                self._decoders.append(self._opt_int_decoder())
            elif kind == FIELD_PLAIN:
                self._encoders.append(self._plain_encoder(key))
                self._decoders.append(None)
            else:
                raise ValueError(f"unknown field kind: {kind!r}")

    # -- per-kind encoders/decoders (closures keep the hot loop tight)
    @staticmethod
    def _plain_encoder(key):
        def encode(value):
            return value[key]

        return encode

    @staticmethod
    def _enum_encoder(key, index):
        def encode(value):
            try:
                return index[value[key]]
            except KeyError:
                raise _Fallback from None

        return encode

    @staticmethod
    def _enum_decoder(vocab):
        def decode(raw):
            return vocab[raw]

        return decode

    @staticmethod
    def _opt_float_encoder(key):
        def encode(value):
            v = value.get(key)
            return float("nan") if v is None else v

        return encode

    @staticmethod
    def _opt_float_decoder():
        def decode(raw):
            return None if raw != raw else raw  # NaN check

        return decode

    @staticmethod
    def _opt_int_encoder(key):
        def encode(value):
            v = value.get(key)
            return -1 if v is None else v

        return encode

    @staticmethod
    def _opt_int_decoder():
        def decode(raw):
            return None if raw < 0 else raw

        return decode

    # ------------------------------------------------------------------
    @property
    def wire_size(self) -> int:
        """Bytes per struct-encoded record (fixed)."""
        return self._struct.size

    @property
    def dtype(self) -> np.dtype:
        """Numpy view of the wire layout, for vectorized batch decode."""
        return np.dtype(
            [("magic", "u1"), ("version", "u1")]
            + [(key, _NUMPY_CODES[code]) for key, code, _, _ in self.fields]
        )

    def decode_batch(self, payloads: Sequence[bytes]) -> np.ndarray:
        """Decode struct-encoded payloads into one structured array.

        One ``np.frombuffer`` over the concatenated fixed-size records —
        no per-record Python.  Enum/optional fields come back as their
        raw wire codes; callers that only need a column (e.g. sorting
        summaries by car id at a shard barrier) read it directly.
        Raises :class:`SerdeError` if any payload is not struct-encoded
        (mixed topics must fall back to :meth:`deserialize`).
        """
        size = self._struct.size
        if not all(
            len(p) == size and p[0] == STRUCT_MAGIC for p in payloads
        ):
            raise SerdeError("batch contains non-struct payloads")
        rows = np.frombuffer(b"".join(payloads), dtype=self.dtype)
        if rows.size and not (rows["version"] == STRUCT_VERSION).all():
            raise SerdeError("mixed/unsupported struct schema versions")
        return rows

    def serialize(self, value: Any) -> bytes:
        if isinstance(value, dict):
            try:
                return self._struct.pack(
                    STRUCT_MAGIC,
                    STRUCT_VERSION,
                    *[encode(value) for encode in self._encoders],
                )
            except (_Fallback, KeyError, TypeError, struct.error):
                pass
        return self._json.serialize(value)

    def deserialize(self, payload: bytes) -> Any:
        if not payload or payload[0] != STRUCT_MAGIC:
            return self._json.deserialize(payload)
        try:
            unpacked = self._struct.unpack(payload)
        except struct.error as exc:
            raise SerdeError(f"bad struct payload: {exc}") from exc
        if unpacked[1] != STRUCT_VERSION:
            raise SerdeError(
                f"unsupported struct schema version {unpacked[1]}"
            )
        out = {}
        for (key, _code, _kind, _vocab), decoder, raw in zip(
            self.fields, self._decoders, unpacked[2:]
        ):
            out[key] = decoder(raw) if decoder is not None else raw
        return out


class RawSerde(Serde):
    """Pass-through for pre-encoded bytes."""

    def serialize(self, value: Any) -> bytes:
        if isinstance(value, bytes):
            return value
        if isinstance(value, str):
            return value.encode("utf-8")
        raise SerdeError(f"RawSerde expects bytes or str, got {type(value)}")

    def deserialize(self, payload: bytes) -> Any:
        return payload


def serialize_key(serde: Serde, key: Any) -> Optional[bytes]:
    """Serialize an optional record key."""
    if key is None:
        return None
    return serde.serialize(key)
