"""Broker: topic management, produce/fetch, group offsets, accounting.

One broker instance plays the role of one Kafka server; the paper runs
"2 servers (Brokers) to act as motorway and motorway link RSUs" and
later five.  The broker also keeps byte counters, which the bandwidth
experiments (Fig. 6c/6d) read.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.streaming.coordinator import GroupCoordinator
from repro.streaming.records import BlockSegment, RecordMetadata, StoredRecord
from repro.streaming.topic import Partition, Topic


class BrokerError(RuntimeError):
    """Generic broker-side failure."""


class TopicNotFound(BrokerError):
    """Operation on a topic that does not exist."""


class BrokerUnavailable(BrokerError):
    """The broker is down (crashed, or the ack was lost in flight).

    Clients treat this as Kafka's retriable errors
    (``NotEnoughReplicas`` / request timeout): the resilient producer
    buffers and retries with backoff, consumers skip the poll.
    """


class Broker:
    """An in-process event-streaming server.

    Parameters
    ----------
    name:
        Broker identity (e.g. ``"rsu-motorway-1"``).
    clock:
        Zero-argument callable returning the current time; experiments
        inject the simulator clock so record timestamps live on
        simulated time.
    """

    #: Perf-baseline switch (class level, snapshotted at construction):
    #: ``True`` restores the pre-overhaul fetch path — full
    #: topic()/partition() validation chain and a log slice on every
    #: poll, empty or not.  The BENCH_4 corridor baseline flips this.
    legacy_fetch = False

    def __init__(
        self, name: str, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self._topics: Dict[str, Topic] = {}
        # (group, topic, partition) -> committed offset
        self._committed: Dict[Tuple[str, str, int], int] = {}
        self.coordinator = GroupCoordinator()
        # topic -> list of callbacks fired on every produce (wakeup
        # dissemination; see subscribe_notify).  Callbacks may be
        # registered before their topic exists: produce looks the list
        # up by name, so they attach the moment the topic gets traffic.
        self._notify: Dict[str, List[Callable[[RecordMetadata], None]]] = {}
        # (producer_id, topic) -> (last accepted sequence, its metadata):
        # the idempotent-produce dedupe table (Kafka's per-partition
        # producer state, collapsed to per-topic at this model's scale).
        self._producer_state: Dict[Tuple[str, str], Tuple[int, RecordMetadata]] = {}
        # (topic, partition) -> Partition, filled lazily by fetch.
        # Partition objects are created once per topic and survive
        # crash/restart (the durable log), so the cache never goes
        # stale; it exists because consumers poll every 10 ms and the
        # topic()/partition() validation chain dominated empty polls.
        self._partition_cache: Dict[Tuple[str, int], Partition] = {}
        self._legacy_fetch = bool(self.legacy_fetch)
        self._available = True
        #: Simulated-time horizon below which produce acks are "lost":
        #: the record is appended but the producer sees a failure —
        #: the window where idempotence earns its keep.
        self._drop_acks_until = float("-inf")
        self.bytes_in = 0
        self.bytes_out = 0
        self.records_in = 0
        self.records_out = 0
        self.duplicates_rejected = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # Availability (fault injection)
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        return self._available

    def shutdown(self) -> None:
        """Crash the broker: produce/fetch/commit raise until restart.

        The log and committed offsets survive (they model the durable
        on-disk state a real broker recovers from); only availability
        is lost.
        """
        if self._available:
            self._available = False
            self.crashes += 1

    def restart(self) -> None:
        """Bring a crashed broker back with its durable state intact."""
        self._available = True

    def drop_acks_until(self, until_time: float) -> None:
        """Lose produce acks until simulated time ``until_time``.

        Each produce in the window appends normally but raises
        :class:`BrokerUnavailable`, so a retrying producer re-sends a
        record the log already holds — exactly the double-count that
        idempotent produce (sequence numbers) must reject.
        """
        self._drop_acks_until = until_time

    def _check_available(self, operation: str) -> None:
        if not self._available:
            raise BrokerUnavailable(
                f"broker {self.name!r} is down ({operation} refused)"
            )

    # ------------------------------------------------------------------
    # Topic management
    # ------------------------------------------------------------------
    def create_topic(
        self,
        name: str,
        num_partitions: int = 3,
        retention_records: Optional[int] = None,
    ) -> Topic:
        """Create a topic; creating an existing name is an error."""
        if name in self._topics:
            raise BrokerError(f"topic {name!r} already exists on {self.name!r}")
        topic = Topic(name, num_partitions, retention_records=retention_records)
        self._topics[name] = topic
        return topic

    def ensure_topic(self, name: str, num_partitions: int = 3) -> Topic:
        """Create the topic if absent, return it either way."""
        if name not in self._topics:
            return self.create_topic(name, num_partitions)
        return self._topics[name]

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise TopicNotFound(
                f"topic {name!r} does not exist on broker {self.name!r}"
            ) from None

    def topic_names(self) -> List[str]:
        return sorted(self._topics)

    def has_topic(self, name: str) -> bool:
        return name in self._topics

    # ------------------------------------------------------------------
    # Produce / fetch
    # ------------------------------------------------------------------
    def produce(
        self,
        topic_name: str,
        value: bytes,
        key: Optional[bytes] = None,
        partition: Optional[int] = None,
        timestamp: Optional[float] = None,
        producer_id: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> RecordMetadata:
        """Append a serialized record, returning its metadata.

        With ``producer_id`` and ``sequence`` set the append is
        idempotent: a sequence at or below the producer's last accepted
        one is a retry of a record the log already holds, so the broker
        skips the append and returns the original metadata (Kafka's
        exactly-once-per-partition producer protocol).
        """
        self._check_available("produce")
        state_key = None
        if producer_id is not None and sequence is not None:
            state_key = (producer_id, topic_name)
            state = self._producer_state.get(state_key)
            if state is not None and sequence <= state[0]:
                self.duplicates_rejected += 1
                return state[1]
        topic = self.topic(topic_name)
        index = topic.route(key) if partition is None else partition
        log = topic.partition(index)
        record_time = self._clock() if timestamp is None else timestamp
        offset = log.append(record_time, key, value)
        topic.version += 1
        size = len(value) + (len(key) if key else 0)
        self.bytes_in += size
        self.records_in += 1
        metadata = RecordMetadata(
            topic=topic_name,
            partition=index,
            offset=offset,
            timestamp=record_time,
            serialized_size=size,
        )
        if state_key is not None:
            self._producer_state[state_key] = (sequence, metadata)
        callbacks = self._notify.get(topic_name)
        if callbacks:
            for callback in list(callbacks):
                callback(metadata)
        if self._clock() < self._drop_acks_until:
            # The append happened; the ack did not make it back.
            raise BrokerUnavailable(
                f"broker {self.name!r} lost the produce ack for "
                f"{topic_name!r}[{index}]@{offset}"
            )
        return metadata

    def subscribe_notify(
        self, topic_name: str, callback: Callable[[RecordMetadata], None]
    ) -> Callable[[], None]:
        """Invoke ``callback(metadata)`` on every produce to the topic.

        This is the wakeup-on-produce hook behind the vehicles'
        ``dissemination="notify"`` mode: instead of polling ``OUT-DATA``
        every 10 ms (the paper's loop), a consumer can sleep until the
        broker tells it a record landed.  Returns a zero-argument
        cancel function.  Real Kafka has no such push channel — keep
        polling mode when reproducing the paper's latency numbers.

        Registration does not require the topic to exist yet: a
        callback registered early simply waits for the topic's first
        produce (registering before topic creation used to drop the
        callback silently).
        """
        callbacks = self._notify.setdefault(topic_name, [])
        callbacks.append(callback)

        def cancel() -> None:
            try:
                callbacks.remove(callback)
            except ValueError:
                pass

        return cancel

    def fetch(
        self,
        topic_name: str,
        partition: int,
        from_offset: int,
        max_records: int = 500,
    ) -> List[StoredRecord]:
        """Read records from one partition starting at ``from_offset``."""
        if not self._available:
            self._check_available("fetch")
        if self._legacy_fetch:
            records = self.topic(topic_name).partition(partition).read(
                from_offset, max_records
            )
            if records:
                self.bytes_out += sum(r.size for r in records)
                self.records_out += len(records)
            return records
        log = self._partition_cache.get((topic_name, partition))
        if log is None:
            log = self.topic(topic_name).partition(partition)
            self._partition_cache[(topic_name, partition)] = log
        if from_offset >= 0 and from_offset - log._start_offset >= len(
            log._records
        ):
            # Nothing new past the caller's position — the overwhelming
            # majority of 10 ms polls; skip the slice and accounting.
            return []
        records = log.read(from_offset, max_records)
        if records:
            self.bytes_out += sum(r.size for r in records)
            self.records_out += len(records)
        return records

    def fetch_block(
        self,
        topic_name: str,
        partition: int,
        from_offset: int,
        max_records: int = 500,
    ) -> Optional[BlockSegment]:
        """Block variant of :meth:`fetch`: one contiguous wire slab.

        Returns ``None`` when nothing is available past ``from_offset``;
        otherwise a :class:`BlockSegment` — zero-copy off the
        partition's columnar slab when the log is uniformly
        struct-encoded, or carrying the per-record value list as a
        fallback.  Byte/record accounting matches :meth:`fetch` exactly.
        """
        if not self._available:
            self._check_available("fetch")
        log = self._partition_cache.get((topic_name, partition))
        if log is None:
            log = self.topic(topic_name).partition(partition)
            self._partition_cache[(topic_name, partition)] = log
        if from_offset >= 0 and from_offset - log._start_offset >= len(
            log._records
        ):
            return None
        block = log.read_block(from_offset, max_records)
        if block is not None:
            view, record_size, count, next_offset, nbytes = block
            self.bytes_out += nbytes
            self.records_out += count
            return BlockSegment(
                topic=topic_name,
                partition=partition,
                count=count,
                next_offset=next_offset,
                nbytes=nbytes,
                data=view,
                record_size=record_size,
            )
        records = log.read(from_offset, max_records)
        if not records:
            return None
        nbytes = sum(r.size for r in records)
        self.bytes_out += nbytes
        self.records_out += len(records)
        return BlockSegment(
            topic=topic_name,
            partition=partition,
            count=len(records),
            next_offset=records[-1].offset + 1,
            nbytes=nbytes,
            values=[r.value for r in records],
        )

    def end_offset(self, topic_name: str, partition: int) -> int:
        return self.topic(topic_name).partition(partition).end_offset

    # ------------------------------------------------------------------
    # Consumer-group offsets
    # ------------------------------------------------------------------
    def commit(
        self, group: str, topic_name: str, partition: int, offset: int
    ) -> None:
        """Store a consumer group's committed offset."""
        self._check_available("commit")
        if offset < 0:
            raise BrokerError(f"cannot commit negative offset {offset}")
        self.topic(topic_name).partition(partition)  # validate existence
        self._committed[(group, topic_name, partition)] = offset

    def committed(self, group: str, topic_name: str, partition: int) -> int:
        """The group's committed offset, 0 if never committed."""
        return self._committed.get((group, topic_name, partition), 0)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Accounting snapshot used by the bandwidth experiments."""
        return {
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "duplicates_rejected": self.duplicates_rejected,
        }

    def __repr__(self) -> str:
        return (
            f"Broker(name={self.name!r}, topics={len(self._topics)}, "
            f"records_in={self.records_in})"
        )
