"""Shared-memory ring buffers for cross-process streaming.

The sharded engine moves its only cross-shard traffic — struct-encoded
telemetry frames, CO-DATA summaries, and pickled vehicle-transfer
bundles — through :class:`ShmRing`: a single-producer single-consumer
framed ring over :mod:`multiprocessing.shared_memory`.  Payloads stay
bytes end to end (the fixed-layout serdes of :mod:`repro.core.wire`
produce them, ``np.frombuffer`` decodes them on the far side), so
nothing is pickled through a ``multiprocessing.Queue`` on the hot path.

Synchronization is external by design: the engine's barrier handshake
(a pipe round-trip per 50 ms window) orders every write before the
matching read, so the ring needs no locks or atomics — the head/tail
cursors are plain ``np.uint64`` views into the segment header.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

#: Ring header: write cursor (head) and read cursor (tail), both
#: monotonic byte counters (never wrapped; positions are ``% capacity``).
_HEADER_BYTES = 16

#: Per-frame header: payload length (u32) + frame kind (u8).
_FRAME_HEADER = struct.Struct("<IB")


class RingFull(RuntimeError):
    """A push would overwrite unread frames (size the ring up, or drain
    more often)."""


class ShmRing:
    """SPSC framed byte ring in a shared-memory segment.

    Parameters
    ----------
    capacity:
        Usable data bytes (the segment is ``capacity + 16`` header
        bytes).  A frame costs ``5 + len(payload)`` bytes.
    name:
        Attach to an existing segment by name; ``None`` creates a new
        one.
    """

    def __init__(self, capacity: int, name: Optional[str] = None) -> None:
        if capacity < _FRAME_HEADER.size + 1:
            raise ValueError(f"capacity too small: {capacity}")
        self.capacity = int(capacity)
        self._owner = name is None
        if self._owner:
            self._shm = shared_memory.SharedMemory(
                create=True, size=_HEADER_BYTES + self.capacity
            )
            self._cursors = np.frombuffer(
                self._shm.buf, dtype=np.uint64, count=2
            )
            self._cursors[:] = 0
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self._cursors = np.frombuffer(
                self._shm.buf, dtype=np.uint64, count=2
            )

    # -- pickling (spawn start-method): reattach by name ---------------
    def __getstate__(self) -> Tuple[int, str]:
        return (self.capacity, self._shm.name)

    def __setstate__(self, state: Tuple[int, str]) -> None:
        capacity, name = state
        self.__init__(capacity, name=name)

    @property
    def name(self) -> str:
        """Segment name, for attaching from another process."""
        return self._shm.name

    # ------------------------------------------------------------------
    @property
    def _head(self) -> int:
        return int(self._cursors[0])

    @property
    def _tail(self) -> int:
        return int(self._cursors[1])

    def __len__(self) -> int:
        """Unread bytes (including frame headers)."""
        return self._head - self._tail

    @property
    def free(self) -> int:
        return self.capacity - len(self)

    # ------------------------------------------------------------------
    def _write_at(self, cursor: int, data) -> None:
        position = cursor % self.capacity
        length = len(data)
        first = min(length, self.capacity - position)
        offset = _HEADER_BYTES + position
        if first == length:
            # Non-wrapping fast path: one buffer-to-buffer copy, no
            # intermediate ``data[:first]`` slice object.
            self._shm.buf[offset : offset + length] = data
            return
        view = memoryview(data)
        self._shm.buf[offset : offset + first] = view[:first]
        rest = length - first
        self._shm.buf[_HEADER_BYTES : _HEADER_BYTES + rest] = view[first:]

    def view_at(self, cursor: int, length: int) -> memoryview:
        """A readable view of ``length`` bytes at absolute ``cursor``.

        On the non-wrapping fast path this is a zero-copy ``memoryview``
        straight into the shared segment — ``np.frombuffer`` decodes
        block payloads off it without an intermediate ``bytes`` copy.
        A range that wraps the physical end is reassembled into a fresh
        contiguous buffer (one copy, unavoidable for a contiguous view).

        Views into the segment are *borrowed*: they alias ring storage
        that the producer may overwrite once the read cursor has moved
        past it, and live views block :meth:`close`.  Decode or copy
        promptly; call ``release()`` (or drop the reference) before the
        next overwriting push.
        """
        position = cursor % self.capacity
        first = min(length, self.capacity - position)
        offset = _HEADER_BYTES + position
        if first == length:
            return self._shm.buf[offset : offset + length]
        joined = bytearray(length)
        joined[:first] = self._shm.buf[offset : offset + first]
        joined[first:] = self._shm.buf[
            _HEADER_BYTES : _HEADER_BYTES + length - first
        ]
        return memoryview(joined)

    def _read_at(self, cursor: int, length: int) -> bytes:
        view = self.view_at(cursor, length)
        data = bytes(view)
        view.release()
        return data

    def push(self, kind: int, payload: bytes) -> None:
        """Append one frame; raises :class:`RingFull` if it won't fit."""
        frame_size = _FRAME_HEADER.size + len(payload)
        if frame_size > self.free:
            raise RingFull(
                f"frame of {frame_size} bytes exceeds free space "
                f"{self.free}/{self.capacity}"
            )
        head = self._head
        self._write_at(head, _FRAME_HEADER.pack(len(payload), kind))
        self._write_at(head + _FRAME_HEADER.size, payload)
        self._cursors[0] = np.uint64(head + frame_size)

    def pop(self) -> Optional[Tuple[int, bytes]]:
        """Remove and return the oldest ``(kind, payload)`` frame, or
        ``None`` if the ring is empty."""
        frame = self.pop_view()
        if frame is None:
            return None
        kind, view = frame
        payload = bytes(view)
        view.release()
        return kind, payload

    def pop_view(self) -> Optional[Tuple[int, memoryview]]:
        """Remove the oldest frame, returning ``(kind, view)`` zero-copy.

        The view is borrowed ring storage (see :meth:`view_at`): it is
        guaranteed intact only until the producer pushes again, because
        popping frees the bytes for reuse.  The sharded engine's barrier
        handshake makes this safe — a worker drains and decodes its
        inbox strictly between the engine's pushes — but any caller that
        retains a frame across a push must copy it first.
        """
        tail = self._tail
        if self._head == tail:
            return None
        header = self.view_at(tail, _FRAME_HEADER.size)
        length, kind = _FRAME_HEADER.unpack(header)
        header.release()
        view = self.view_at(tail + _FRAME_HEADER.size, length)
        self._cursors[1] = np.uint64(tail + _FRAME_HEADER.size + length)
        return kind, view

    def drain(self) -> List[Tuple[int, bytes]]:
        """Pop every pending frame, oldest first."""
        frames = []
        while True:
            frame = self.pop()
            if frame is None:
                return frames
            frames.append(frame)

    def drain_views(self) -> List[Tuple[int, memoryview]]:
        """Pop every pending frame as borrowed views, oldest first.

        Bulk-frame variant of :meth:`pop_view`; the same lifetime rules
        apply to every returned view.
        """
        frames = []
        while True:
            frame = self.pop_view()
            if frame is None:
                return frames
            frames.append(frame)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping (cursors become unusable)."""
        # Drop the numpy views first: SharedMemory.close() refuses to
        # unmap while exported buffers are alive.
        self._cursors = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side, after all parties closed)."""
        self._shm.unlink()

    def __repr__(self) -> str:
        return (
            f"ShmRing(name={self._shm.name!r}, capacity={self.capacity}, "
            f"pending={len(self)})"
        )
