"""Consumer client with consumer-group offset tracking.

Mirrors ``kafka-python``'s poll loop: subscribe to topics, ``poll`` for
a batch, offsets advance per partition, and groups commit offsets back
to the broker so another consumer (or a restart) resumes where the
group left off — the property the paper's warning-dissemination path
relies on ("each Kafka consumer pulls every 10 ms").
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.streaming.broker import Broker
from repro.streaming.records import BlockSegment, ConsumerRecord
from repro.streaming.serde import JsonSerde, Serde

_consumer_ids = itertools.count(1)


class Consumer:
    """Poll records from one broker.

    Parameters
    ----------
    broker:
        Source broker.
    group:
        Consumer-group id.  Consumers in the same group share committed
        offsets on the broker; a ``None`` group keeps offsets local.
    serde:
        Value/key deserializer.
    auto_commit:
        Commit offsets back to the broker after each poll (only
        meaningful with a group).
    """

    #: Perf-baseline switch (class level, snapshotted at construction):
    #: ``True`` restores the pre-overhaul poll, which re-sorted the
    #: assignment on every call instead of using the cached
    #: ``_poll_order``.  Visit order — and so every trajectory — is
    #: identical; the BENCH_4 corridor baseline flips this.
    legacy_poll = False

    def __init__(
        self,
        broker: Broker,
        group: Optional[str] = None,
        serde: Optional[Serde] = None,
        auto_commit: bool = True,
        client_id: Optional[str] = None,
    ) -> None:
        self.broker = broker
        self.group = group
        self.serde = serde or JsonSerde()
        self.auto_commit = auto_commit
        self.client_id = client_id or f"consumer-{next(_consumer_ids)}"
        self._subscriptions: List[str] = []
        self._positions: Dict[Tuple[str, int], int] = {}
        self._legacy_poll = bool(self.legacy_poll)
        #: Partition visit order for poll — sorted once when the
        #: assignment changes, not on every 10 ms poll.
        self._poll_order: List[Tuple[str, int]] = []
        self._balanced = False
        self._generation = -1
        #: topic -> the topic's produce-version counter at the last
        #: poll that came back empty with every position at the log
        #: end.  While the versions are unchanged, a poll is answered
        #: with one integer compare per topic instead of a
        #: per-partition fetch.  Invalidated whenever positions move by
        #: other means (subscribe / seek / rebalance).
        self._idle_versions: Dict[str, int] = {}
        self._topic_cache: Dict[str, object] = {}
        self.records_consumed = 0
        self.bytes_consumed = 0

    # ------------------------------------------------------------------
    def subscribe(self, topics: List[str], balanced: bool = False) -> None:
        """Subscribe to ``topics``.

        With ``balanced=False`` (default) this consumer reads every
        partition of every topic.  With ``balanced=True`` (requires a
        group) it joins the broker's group coordinator, which divides
        partitions among the group's members — Kafka's consumer-group
        semantics.  Positions resume from the group's committed
        offsets (or 0).
        """
        if balanced and self.group is None:
            raise ValueError("balanced subscription requires a consumer group")
        topic_partitions = {}
        for name in topics:
            topic = self.broker.topic(name)  # validates existence
            if name not in self._subscriptions:
                self._subscriptions.append(name)
            topic_partitions[name] = topic.num_partitions
        self._idle_versions.clear()
        if balanced:
            self._balanced = True
            self._generation = self.broker.coordinator.join(
                self.group, self.client_id, topic_partitions
            )
            self._refresh_assignment()
            return
        for name, num_partitions in topic_partitions.items():
            for partition in range(num_partitions):
                if (name, partition) in self._positions:
                    continue
                self._positions[(name, partition)] = self._committed_or_zero(
                    name, partition
                )
        self._poll_order = sorted(self._positions)

    def _committed_or_zero(self, topic: str, partition: int) -> int:
        if self.group is not None:
            return self.broker.committed(self.group, topic, partition)
        return 0

    def _refresh_assignment(self) -> None:
        assigned = self.broker.coordinator.assignment(
            self.group, self.client_id
        )
        self._positions = {
            (topic, partition): self._committed_or_zero(topic, partition)
            for topic, partition in assigned
        }
        self._poll_order = sorted(self._positions)
        self._idle_versions.clear()

    def close(self) -> None:
        """Leave the group (balanced mode), triggering a rebalance."""
        if self._balanced:
            self.broker.coordinator.leave(self.group, self.client_id)
            self._balanced = False
            self._positions = {}
            self._poll_order = []

    @property
    def assigned_partitions(self) -> List[Tuple[str, int]]:
        return sorted(self._positions)

    @property
    def subscriptions(self) -> List[str]:
        return list(self._subscriptions)

    def seek_to_end(self) -> None:
        """Skip to the log end of every subscribed partition (consume
        only records produced after this call)."""
        for (topic, partition) in list(self._positions):
            self._positions[(topic, partition)] = self.broker.end_offset(
                topic, partition
            )
        self._idle_versions.clear()

    def seek(self, topic: str, partition: int, offset: int) -> None:
        if (topic, partition) not in self._positions:
            raise KeyError(
                f"consumer {self.client_id!r} is not subscribed to "
                f"{topic!r}[{partition}]"
            )
        if offset < 0:
            raise ValueError(f"offset must be non-negative: {offset}")
        self._positions[(topic, partition)] = offset
        self._idle_versions.clear()

    def position(self, topic: str, partition: int) -> int:
        return self._positions[(topic, partition)]

    # ------------------------------------------------------------------
    def _topic(self, name: str):
        topic = self._topic_cache.get(name)
        if topic is None:
            topic = self.broker.topic(name)
            self._topic_cache[name] = topic
        return topic

    def _still_idle(self) -> bool:
        """True when no subscribed topic produced since the last empty
        poll — the poll can return [] without touching any partition.

        Only valid while the broker is up (a down broker must raise
        from fetch, as the per-partition loop would).
        """
        idle = self._idle_versions
        if len(idle) != len(self._subscriptions):
            return False
        for name in self._subscriptions:
            version = idle.get(name)
            if version is None or version != self._topic(name).version:
                return False
        return True

    def _mark_idle(self) -> None:
        for name in self._subscriptions:
            self._idle_versions[name] = self._topic(name).version

    def poll(
        self, max_records: int = 500, deserialize: bool = True
    ) -> List[ConsumerRecord]:
        """Fetch available records past the current positions.

        Balanced consumers first check the group generation and pick
        up any rebalance (another member joined or left).

        With ``deserialize=False`` the records carry the raw wire bytes
        in ``key``/``value`` — the columnar pipeline polls this way and
        batch-decodes the whole micro-batch in one numpy pass instead
        of deserializing record by record.
        """
        if not self._subscriptions:
            return []
        if self._balanced:
            generation = self.broker.coordinator.generation(self.group)
            if generation != self._generation:
                self._generation = generation
                self._refresh_assignment()
        if (
            not self._legacy_poll
            and self.broker.available
            and self._still_idle()
        ):
            return []
        out: List[ConsumerRecord] = []
        budget = max_records
        serde = self.serde
        positions = self._positions
        fetch = self.broker.fetch
        order = sorted(positions) if self._legacy_poll else self._poll_order
        for key in order:
            if budget <= 0:
                break
            topic, partition = key
            stored = fetch(topic, partition, positions[key], budget)
            if not stored:
                continue
            for record in stored:
                if deserialize:
                    key = (
                        serde.deserialize(record.key)
                        if record.key is not None
                        else None
                    )
                    value = serde.deserialize(record.value)
                else:
                    key = record.key
                    value = record.value
                out.append(
                    ConsumerRecord(
                        topic=topic,
                        partition=partition,
                        offset=record.offset,
                        timestamp=record.timestamp,
                        key=key,
                        value=value,
                    )
                )
                self.bytes_consumed += record.size
            new_position = stored[-1].offset + 1
            self._positions[(topic, partition)] = new_position
            budget -= len(stored)
            if self.group is not None and self.auto_commit:
                self.broker.commit(self.group, topic, partition, new_position)
        if out:
            self.records_consumed += len(out)
        elif not self._legacy_poll:
            self._mark_idle()
        return out

    def poll_block(self, max_records: int = 500) -> List[BlockSegment]:
        """Block variant of :meth:`poll`: contiguous wire-byte slabs.

        Visits partitions in the same order, advances the same
        positions, commits the same offsets, and accounts the same
        bytes as ``poll(deserialize=False)`` — but hands back one
        :class:`BlockSegment` per non-empty partition instead of
        per-record objects, zero-copy off the broker's columnar slabs
        whenever the log is uniformly struct-encoded.
        """
        if not self._subscriptions:
            return []
        if self._balanced:
            generation = self.broker.coordinator.generation(self.group)
            if generation != self._generation:
                self._generation = generation
                self._refresh_assignment()
        if self.broker.available and self._still_idle():
            return []
        segments: List[BlockSegment] = []
        budget = max_records
        positions = self._positions
        fetch_block = self.broker.fetch_block
        total = 0
        for key in self._poll_order:
            if budget <= 0:
                break
            topic, partition = key
            segment = fetch_block(topic, partition, positions[key], budget)
            if segment is None:
                continue
            segments.append(segment)
            self.bytes_consumed += segment.nbytes
            positions[key] = segment.next_offset
            budget -= segment.count
            total += segment.count
            if self.group is not None and self.auto_commit:
                self.broker.commit(
                    self.group, topic, partition, segment.next_offset
                )
        if total:
            self.records_consumed += total
        else:
            self._mark_idle()
        return segments

    def commit(self) -> None:
        """Explicitly commit current positions (manual-commit mode)."""
        if self.group is None:
            raise RuntimeError(
                "commit requires a consumer group; this consumer has none"
            )
        for (topic, partition), position in self._positions.items():
            self.broker.commit(self.group, topic, partition, position)

    def lag(self) -> int:
        """Total records available but not yet consumed.

        Positions below a truncated log's start offset only count the
        records actually retained (Kafka's consumer-lag semantics).
        """
        total = 0
        for (topic, partition), position in self._positions.items():
            log = self.broker.topic(topic).partition(partition)
            effective = max(position, log.start_offset)
            total += log.end_offset - effective
        return total

    def __repr__(self) -> str:
        return (
            f"Consumer(client_id={self.client_id!r}, group={self.group!r}, "
            f"consumed={self.records_consumed})"
        )
