"""Partitioned append-only topic logs.

The paper assigns "three partitions for each topic to speed up reading
and writing"; partitions here are append-only lists of serialized
records with monotonically increasing offsets, and key-carrying records
route by key hash (so one vehicle's records stay ordered within a
partition, as in Kafka).
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from repro.streaming.records import StoredRecord


class Partition:
    """One append-only log with optional size-based retention.

    With ``retention_records`` set, the oldest records are truncated
    once the log exceeds the cap — Kafka's retention semantics.
    Offsets are durable: truncation advances ``start_offset`` and
    reads below it return from the earliest retained record (the
    ``auto.offset.reset=earliest`` behaviour).
    """

    def __init__(
        self,
        topic_name: str,
        index: int,
        retention_records: Optional[int] = None,
    ) -> None:
        if retention_records is not None and retention_records < 1:
            raise ValueError(
                f"retention must be >= 1 record: {retention_records}"
            )
        self.topic_name = topic_name
        self.index = index
        self.retention_records = retention_records
        self._records: List[StoredRecord] = []
        self._start_offset = 0
        self.bytes_in = 0
        self.records_truncated = 0

    @property
    def start_offset(self) -> int:
        """Earliest retained offset (Kafka's log-start offset)."""
        return self._start_offset

    def append(
        self, timestamp: float, key: Optional[bytes], value: bytes
    ) -> int:
        """Append a record; returns its offset."""
        offset = self._start_offset + len(self._records)
        record = StoredRecord(
            offset=offset, timestamp=timestamp, key=key, value=value
        )
        self._records.append(record)
        self.bytes_in += record.size
        if (
            self.retention_records is not None
            and len(self._records) > self.retention_records
        ):
            drop = len(self._records) - self.retention_records
            del self._records[:drop]
            self._start_offset += drop
            self.records_truncated += drop
        return offset

    def read(self, from_offset: int, max_records: int) -> List[StoredRecord]:
        """Records with offset >= ``from_offset``, up to ``max_records``.

        Offsets below the retained range resume from the earliest
        retained record.
        """
        if from_offset < 0:
            raise ValueError(f"offset must be non-negative: {from_offset}")
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1: {max_records}")
        index = max(0, from_offset - self._start_offset)
        return self._records[index : index + max_records]

    @property
    def end_offset(self) -> int:
        """Offset the next record will receive (Kafka's log-end offset)."""
        return self._start_offset + len(self._records)

    def __len__(self) -> int:
        return len(self._records)


class Topic:
    """A named set of partitions with key-hash routing."""

    def __init__(
        self,
        name: str,
        num_partitions: int = 3,
        retention_records: Optional[int] = None,
    ) -> None:
        if not name:
            raise ValueError("topic name must be non-empty")
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1: {num_partitions}")
        self.name = name
        self.partitions = [
            Partition(name, i, retention_records=retention_records)
            for i in range(num_partitions)
        ]
        self._round_robin = 0

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def route(self, key: Optional[bytes]) -> int:
        """Partition index for ``key``.

        Keyed records hash (crc32, stable across runs); unkeyed records
        round-robin.
        """
        if key is None:
            index = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.num_partitions
            return index
        return zlib.crc32(key) % self.num_partitions

    def partition(self, index: int) -> Partition:
        if not 0 <= index < self.num_partitions:
            raise IndexError(
                f"topic {self.name!r} has no partition {index} "
                f"(has {self.num_partitions})"
            )
        return self.partitions[index]

    @property
    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def bytes_in(self) -> int:
        return sum(p.bytes_in for p in self.partitions)
