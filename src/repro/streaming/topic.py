"""Partitioned append-only topic logs.

The paper assigns "three partitions for each topic to speed up reading
and writing"; partitions here are append-only lists of serialized
records with monotonically increasing offsets, and key-carrying records
route by key hash (so one vehicle's records stay ordered within a
partition, as in Kafka).
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

from repro.streaming.records import StoredRecord
from repro.streaming.serde import STRUCT_MAGIC


class _Slab:
    """Append-only byte arena backing a partition's block reads.

    Grows by doubling into a fresh buffer; the old buffer is never
    mutated afterwards, so borrowed ``memoryview`` windows handed out
    before a resize keep reading the correct (append-only) bytes — no
    ``BufferError`` on growth, unlike exporting views of a plain
    ``bytearray`` that must later ``extend``.
    """

    __slots__ = ("_buf", "_len")

    def __init__(self, initial: int = 4096) -> None:
        self._buf = bytearray(initial)
        self._len = 0

    def append(self, value: bytes) -> None:
        needed = self._len + len(value)
        if needed > len(self._buf):
            grown = bytearray(max(needed, 2 * len(self._buf)))
            grown[: self._len] = memoryview(self._buf)[: self._len]
            self._buf = grown
        self._buf[self._len : needed] = value
        self._len = needed

    def view(self, start: int, stop: int) -> memoryview:
        return memoryview(self._buf)[start:stop]


class Partition:
    """One append-only log with optional size-based retention.

    With ``retention_records`` set, the oldest records are truncated
    once the log exceeds the cap — Kafka's retention semantics.
    Offsets are durable: truncation advances ``start_offset`` and
    reads below it return from the earliest retained record (the
    ``auto.offset.reset=earliest`` behaviour).
    """

    def __init__(
        self,
        topic_name: str,
        index: int,
        retention_records: Optional[int] = None,
    ) -> None:
        if retention_records is not None and retention_records < 1:
            raise ValueError(
                f"retention must be >= 1 record: {retention_records}"
            )
        self.topic_name = topic_name
        self.index = index
        self.retention_records = retention_records
        self._records: List[StoredRecord] = []
        self._start_offset = 0
        self.bytes_in = 0
        self.records_truncated = 0
        # Columnar sidecar for the zero-copy block-fetch path.  The
        # slab mirrors every appended value while they stay uniform
        # fixed-size struct payloads; the first non-conforming append
        # disables it for the partition's lifetime (mixed logs fall
        # back to per-record reads).  Retention-bounded logs never get
        # one: truncation would have to rebase it.  ``_cum_sizes[k]``
        # is the total consumed size (value + key bytes) of records
        # ``[0, k)``, so any fetch range's byte accounting is two list
        # lookups instead of a per-record sum.
        if retention_records is None:
            self._slab: Optional[_Slab] = _Slab()
            self._cum_sizes: Optional[List[int]] = [0]
        else:
            self._slab = None
            self._cum_sizes = None
        self._slab_record_size: Optional[int] = None

    @property
    def start_offset(self) -> int:
        """Earliest retained offset (Kafka's log-start offset)."""
        return self._start_offset

    def append(
        self, timestamp: float, key: Optional[bytes], value: bytes
    ) -> int:
        """Append a record; returns its offset."""
        offset = self._start_offset + len(self._records)
        record = StoredRecord(
            offset=offset, timestamp=timestamp, key=key, value=value
        )
        self._records.append(record)
        self.bytes_in += record.size
        if self._cum_sizes is not None:
            self._cum_sizes.append(self._cum_sizes[-1] + record.size)
        slab = self._slab
        if slab is not None:
            size = len(value)
            if size and value[0] == STRUCT_MAGIC and (
                self._slab_record_size is None
                or self._slab_record_size == size
            ):
                if self._slab_record_size is None:
                    self._slab_record_size = size
                slab.append(value)
            else:
                self._slab = None
        if (
            self.retention_records is not None
            and len(self._records) > self.retention_records
        ):
            drop = len(self._records) - self.retention_records
            del self._records[:drop]
            self._start_offset += drop
            self.records_truncated += drop
        return offset

    def read(self, from_offset: int, max_records: int) -> List[StoredRecord]:
        """Records with offset >= ``from_offset``, up to ``max_records``.

        Offsets below the retained range resume from the earliest
        retained record.
        """
        if from_offset < 0:
            raise ValueError(f"offset must be non-negative: {from_offset}")
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1: {max_records}")
        index = max(0, from_offset - self._start_offset)
        return self._records[index : index + max_records]

    def read_block(
        self, from_offset: int, max_records: int
    ) -> Optional[Tuple[memoryview, int, int, int, int]]:
        """Zero-copy block read off the columnar slab.

        Returns ``(view, record_size, count, next_offset, nbytes)`` for
        the same record range :meth:`read` would return, where ``view``
        is ``count * record_size`` contiguous wire bytes and ``nbytes``
        the range's consumed size including key bytes — or ``None``
        when the slab is unavailable (mixed payloads or retention) and
        the caller must fall back to per-record reads.
        """
        if self._slab is None or self._slab_record_size is None:
            return None
        index = max(0, from_offset - self._start_offset)
        count = min(max_records, len(self._records) - index)
        if count <= 0:
            return None
        size = self._slab_record_size
        view = self._slab.view(index * size, (index + count) * size)
        nbytes = self._cum_sizes[index + count] - self._cum_sizes[index]
        return view, size, count, self._start_offset + index + count, nbytes

    def range_bytes(self, index: int, count: int) -> Optional[int]:
        """Consumed bytes of records ``[index, index + count)``, or
        ``None`` when the prefix sums are unavailable (retention)."""
        if self._cum_sizes is None:
            return None
        return self._cum_sizes[index + count] - self._cum_sizes[index]

    @property
    def end_offset(self) -> int:
        """Offset the next record will receive (Kafka's log-end offset)."""
        return self._start_offset + len(self._records)

    def __len__(self) -> int:
        return len(self._records)


class Topic:
    """A named set of partitions with key-hash routing."""

    def __init__(
        self,
        name: str,
        num_partitions: int = 3,
        retention_records: Optional[int] = None,
    ) -> None:
        if not name:
            raise ValueError("topic name must be non-empty")
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1: {num_partitions}")
        self.name = name
        self.partitions = [
            Partition(name, i, retention_records=retention_records)
            for i in range(num_partitions)
        ]
        self._round_robin = 0
        #: Bumped by the broker on every produce to any partition.  An
        #: idle consumer that saw version ``v`` with all its positions
        #: at the log end can answer its next poll with one integer
        #: compare instead of a per-partition fetch.
        self.version = 0

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def route(self, key: Optional[bytes]) -> int:
        """Partition index for ``key``.

        Keyed records hash (crc32, stable across runs); unkeyed records
        round-robin.
        """
        if key is None:
            index = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.num_partitions
            return index
        return zlib.crc32(key) % self.num_partitions

    def partition(self, index: int) -> Partition:
        if not 0 <= index < self.num_partitions:
            raise IndexError(
                f"topic {self.name!r} has no partition {index} "
                f"(has {self.num_partitions})"
            )
        return self.partitions[index]

    @property
    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def bytes_in(self) -> int:
        return sum(p.bytes_in for p in self.partitions)
