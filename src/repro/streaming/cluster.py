"""A named set of brokers.

The testbed runs one broker per RSU ("we set up 5 Kafka Brokers as 5
RSUs").  A :class:`Cluster` owns those brokers and resolves which
broker hosts which topic, so producers/consumers can be constructed
against logical RSU names.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.streaming.broker import Broker, BrokerError


class Cluster:
    """Registry of brokers, addressable by name and by topic."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._brokers: Dict[str, Broker] = {}

    def add_broker(self, name: str) -> Broker:
        if name in self._brokers:
            raise BrokerError(f"broker {name!r} already exists")
        broker = Broker(name, clock=self._clock)
        self._brokers[name] = broker
        return broker

    def broker(self, name: str) -> Broker:
        try:
            return self._brokers[name]
        except KeyError:
            raise BrokerError(f"unknown broker {name!r}") from None

    def broker_names(self) -> List[str]:
        return sorted(self._brokers)

    def __len__(self) -> int:
        return len(self._brokers)

    def broker_for_topic(self, topic_name: str) -> Broker:
        """The broker hosting ``topic_name``.

        Raises if zero or multiple brokers host it — topics are
        per-RSU in this system, so ambiguity is a wiring bug.
        """
        hosts = [
            broker
            for broker in self._brokers.values()
            if broker.has_topic(topic_name)
        ]
        if not hosts:
            raise BrokerError(f"no broker hosts topic {topic_name!r}")
        if len(hosts) > 1:
            names = sorted(b.name for b in hosts)
            raise BrokerError(
                f"topic {topic_name!r} exists on multiple brokers: {names}"
            )
        return hosts[0]

    def total_stats(self) -> Dict[str, int]:
        """Summed accounting across all brokers."""
        totals: Dict[str, int] = {
            "bytes_in": 0,
            "bytes_out": 0,
            "records_in": 0,
            "records_out": 0,
            "duplicates_rejected": 0,
        }
        for broker in self._brokers.values():
            for key, value in broker.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals
