"""Record types crossing the streaming substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class RecordMetadata:
    """Returned by a successful produce (Kafka's ``RecordMetadata``)."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    serialized_size: int


@dataclass(frozen=True)
class StoredRecord:
    """What a partition log physically holds: serialized bytes."""

    offset: int
    timestamp: float
    key: Optional[bytes]
    value: bytes

    @property
    def size(self) -> int:
        return len(self.value) + (len(self.key) if self.key else 0)


@dataclass(frozen=True)
class ConsumerRecord:
    """What a consumer's poll returns: deserialized payloads."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    key: Any
    value: Any
