"""Record types crossing the streaming substrate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class RecordMetadata:
    """Returned by a successful produce (Kafka's ``RecordMetadata``)."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    serialized_size: int


@dataclass(frozen=True)
class StoredRecord:
    """What a partition log physically holds: serialized bytes."""

    offset: int
    timestamp: float
    key: Optional[bytes]
    value: bytes

    @property
    def size(self) -> int:
        return len(self.value) + (len(self.key) if self.key else 0)


@dataclass(frozen=True)
class ConsumerRecord:
    """What a consumer's poll returns: deserialized payloads."""

    topic: str
    partition: int
    offset: int
    timestamp: float
    key: Any
    value: Any


class BlockSegment:
    """One partition's slice of a block fetch: contiguous wire bytes.

    The zero-copy currency of :meth:`Broker.fetch_block` /
    :meth:`Consumer.poll_block`.  When the partition's append-only slab
    is live (every record struct-encoded at one fixed size), ``data``
    is a borrowed ``memoryview`` of ``count * record_size`` bytes that
    ``np.frombuffer`` decodes without materializing per-record objects.
    When the slab is unavailable (mixed JSON fallback payloads, or a
    retention-bounded log), ``values`` carries the per-record value
    bytes instead and ``data`` is ``None``.

    ``nbytes`` is the exact consumed size (values plus record keys),
    matching the per-record path's accounting bit for bit.
    """

    __slots__ = (
        "topic",
        "partition",
        "count",
        "next_offset",
        "nbytes",
        "data",
        "record_size",
        "values",
    )

    def __init__(
        self,
        topic: str,
        partition: int,
        count: int,
        next_offset: int,
        nbytes: int,
        data: Optional[memoryview] = None,
        record_size: Optional[int] = None,
        values: Optional[list] = None,
    ) -> None:
        self.topic = topic
        self.partition = partition
        self.count = count
        self.next_offset = next_offset
        self.nbytes = nbytes
        self.data = data
        self.record_size = record_size
        self.values = values

    @property
    def is_uniform(self) -> bool:
        """True when ``data`` holds ``count`` fixed-size struct records."""
        return self.data is not None

    def value_list(self) -> list:
        """Materialize the per-record value bytes (fallback decoding)."""
        if self.values is not None:
            return self.values
        size = self.record_size
        data = self.data
        return [
            bytes(data[i * size : (i + 1) * size]) for i in range(self.count)
        ]

    def __repr__(self) -> str:
        return (
            f"BlockSegment({self.topic!r}[{self.partition}], "
            f"count={self.count}, uniform={self.is_uniform})"
        )
