"""Producer client.

Mirrors ``kafka-python``'s ``KafkaProducer`` surface at the scale the
pipeline needs: serialize, route, append, return metadata.  The
producer keeps its own byte counters so per-vehicle bandwidth
(Fig. 6c's ~20 Kb/s per vehicle) can be measured at the sender.

On top of the fire-and-forget path the producer offers Kafka's
delivery guarantees, both opt-in so the default behaviour is
unchanged:

- **Retry with exponential backoff** (:class:`RetryPolicy`): when the
  broker is unavailable the record enters a bounded in-flight buffer
  and a flush is scheduled on the simulation clock; the buffer drains
  in order once the broker answers again.  The buffer is bounded —
  when full, the oldest record is dropped (and counted), modelling
  ``buffer.memory`` exhaustion.
- **Idempotent produce** (``idempotent=True``): every record carries
  ``(producer_id, sequence)``; the broker rejects sequences it has
  already accepted, so a retry of a record whose ack was lost never
  double-counts (Kafka's ``enable.idempotence``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional

from repro.obs import metrics as obs_metrics
from repro.streaming.broker import Broker, BrokerUnavailable
from repro.streaming.records import RecordMetadata
from repro.streaming.serde import JsonSerde, Serde, serialize_key


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and buffering knobs for the resilient producer.

    Defaults suit the testbed's fault profiles: first retry after
    50 ms, doubling to a 800 ms cap — a broker restarting within the
    2 s recovery budget is found within a few attempts — and a
    256-record in-flight buffer (≥ 25 s of one vehicle's 10 Hz
    telemetry).
    """

    base_backoff_s: float = 0.050
    multiplier: float = 2.0
    max_backoff_s: float = 0.800
    max_buffered: int = 256

    def __post_init__(self) -> None:
        if self.base_backoff_s <= 0:
            raise ValueError("base_backoff_s must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if self.max_buffered < 1:
            raise ValueError("max_buffered must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(
            self.base_backoff_s * self.multiplier**attempt,
            self.max_backoff_s,
        )


@dataclass
class _Pending:
    """One buffered record awaiting a (re)send."""

    topic: str
    payload: bytes
    key: Optional[bytes]
    partition: Optional[int]
    timestamp: Optional[float]
    sequence: Optional[int]


class Producer:
    """Publish records to one broker.

    Parameters
    ----------
    broker:
        Target broker.
    serde:
        Value (and key) serializer; JSON by default as in the paper.
    client_id:
        Identity for diagnostics (e.g. ``"vehicle-42"``); doubles as
        the idempotent producer id.
    sim:
        Simulation kernel; required for scheduled backoff retries.
        Without it a configured retry policy still buffers, but only
        re-attempts the buffer on the next ``send``.
    retry:
        :class:`RetryPolicy` enabling buffering + backoff on
        :class:`BrokerUnavailable`.  ``None`` (default) keeps the
        legacy fail-fast behaviour, bit-identical to the seed.
    idempotent:
        Attach ``(producer_id, sequence)`` to every record so broker-
        side dedupe makes retries exactly-once in effect.
    """

    def __init__(
        self,
        broker: Broker,
        serde: Optional[Serde] = None,
        client_id: str = "producer",
        sim=None,
        retry: Optional[RetryPolicy] = None,
        idempotent: bool = False,
    ) -> None:
        self.broker = broker
        self.serde = serde or JsonSerde()
        self.client_id = client_id
        self.sim = sim
        self.retry = retry
        self.idempotent = idempotent
        self.bytes_sent = 0
        self.records_sent = 0
        #: Records that needed at least one retry and were delivered.
        self.records_retried = 0
        #: Records evicted from a full in-flight buffer (lost).
        self.records_dropped = 0
        #: Buffered records deliberately discarded at a rebind
        #: (stale data the new broker should not receive).
        self.records_abandoned = 0
        self._sequences: dict = {}
        self._buffer: Deque[_Pending] = deque()
        self._retried_pending = 0
        self._attempt = 0
        self._flush_scheduled = False
        self._closed = False

    # ------------------------------------------------------------------
    def _next_sequence(self, topic: str) -> Optional[int]:
        if not self.idempotent:
            return None
        sequence = self._sequences.get(topic, 0) + 1
        self._sequences[topic] = sequence
        return sequence

    def _produce(self, pending: _Pending) -> RecordMetadata:
        return self.broker.produce(
            pending.topic,
            pending.payload,
            key=pending.key,
            partition=pending.partition,
            timestamp=pending.timestamp,
            producer_id=self.client_id if self.idempotent else None,
            sequence=pending.sequence,
        )

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        partition: Optional[int] = None,
        timestamp: Optional[float] = None,
    ) -> Optional[RecordMetadata]:
        """Serialize and append one record.

        Returns the record's metadata, or ``None`` when the broker was
        unavailable and the record entered the retry buffer (only with
        a :class:`RetryPolicy`; otherwise the error propagates).
        """
        if self._closed:
            raise RuntimeError(f"producer {self.client_id!r} is closed")
        payload = self.serde.serialize(value)
        key_bytes = serialize_key(self.serde, key)
        pending = _Pending(
            topic=topic,
            payload=payload,
            key=key_bytes,
            partition=partition,
            timestamp=timestamp,
            sequence=self._next_sequence(topic),
        )
        if self._buffer:
            # Keep per-topic ordering: drain the backlog first.
            self._enqueue(pending)
            self._flush()
            return None
        try:
            metadata = self._produce(pending)
        except BrokerUnavailable:
            if self.retry is None:
                raise
            self._enqueue(pending)
            self._schedule_flush()
            return None
        self.bytes_sent += metadata.serialized_size
        self.records_sent += 1
        return metadata

    # ------------------------------------------------------------------
    # Retry buffer
    # ------------------------------------------------------------------
    def _enqueue(self, pending: _Pending) -> None:
        assert self.retry is not None
        registry = obs_metrics.active()
        if len(self._buffer) >= self.retry.max_buffered:
            self._buffer.popleft()
            self.records_dropped += 1
            if registry is not None:
                registry.counter("producer.records_dropped").inc()
        self._buffer.append(pending)
        if registry is not None:
            registry.gauge("producer.retry_buffer_peak", agg="max").set(
                len(self._buffer)
            )

    @property
    def buffered(self) -> int:
        """Records currently awaiting retry."""
        return len(self._buffer)

    def _schedule_flush(self) -> None:
        if self._flush_scheduled or self.sim is None or not self._buffer:
            return
        delay = self.retry.backoff_s(self._attempt)
        self._attempt += 1
        registry = obs_metrics.active()
        if registry is not None:
            registry.counter("producer.backoff_events").inc()
        self._flush_scheduled = True
        self.sim.after(
            delay, self._on_flush_timer, label=f"{self.client_id}-retry"
        )

    def _on_flush_timer(self) -> None:
        self._flush_scheduled = False
        self._flush()

    def _flush(self) -> None:
        """Drain the buffer in order; reschedule on the first failure."""
        while self._buffer:
            pending = self._buffer[0]
            try:
                metadata = self._produce(pending)
            except BrokerUnavailable:
                self._schedule_flush()
                return
            self._buffer.popleft()
            self.bytes_sent += metadata.serialized_size
            self.records_sent += 1
            self.records_retried += 1
        self._attempt = 0

    def rebind(self, broker: Broker, drop_pending: bool = False) -> None:
        """Point the producer at a new broker (vehicle handover or
        failover), replaying any buffered records there.

        Sequence numbers keep counting up, so idempotent dedupe stays
        correct on the new broker too.  With ``drop_pending`` the
        buffer is discarded instead (and counted as abandoned) — for
        rebinds where the buffered data is stale, e.g. a handover to a
        different road whose RSU has no model for the old records.
        """
        self.broker = broker
        if drop_pending and self._buffer:
            self.records_abandoned += len(self._buffer)
            self._buffer.clear()
        if self._buffer:
            self._attempt = 0
            if self.sim is not None:
                if not self._flush_scheduled:
                    self._flush_scheduled = True
                    self.sim.after(
                        0.0,
                        self._on_flush_timer,
                        label=f"{self.client_id}-rebind-flush",
                    )
            else:
                self._flush()

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (
            f"Producer(client_id={self.client_id!r}, "
            f"records_sent={self.records_sent})"
        )
