"""Producer client.

Mirrors ``kafka-python``'s ``KafkaProducer`` surface at the scale the
pipeline needs: serialize, route, append, return metadata.  The
producer keeps its own byte counters so per-vehicle bandwidth
(Fig. 6c's ~20 Kb/s per vehicle) can be measured at the sender.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.streaming.broker import Broker
from repro.streaming.records import RecordMetadata
from repro.streaming.serde import JsonSerde, Serde, serialize_key


class Producer:
    """Publish records to one broker.

    Parameters
    ----------
    broker:
        Target broker.
    serde:
        Value (and key) serializer; JSON by default as in the paper.
    client_id:
        Identity for diagnostics (e.g. ``"vehicle-42"``).
    """

    def __init__(
        self,
        broker: Broker,
        serde: Optional[Serde] = None,
        client_id: str = "producer",
    ) -> None:
        self.broker = broker
        self.serde = serde or JsonSerde()
        self.client_id = client_id
        self.bytes_sent = 0
        self.records_sent = 0
        self._closed = False

    def send(
        self,
        topic: str,
        value: Any,
        key: Any = None,
        partition: Optional[int] = None,
        timestamp: Optional[float] = None,
    ) -> RecordMetadata:
        """Serialize and append one record."""
        if self._closed:
            raise RuntimeError(f"producer {self.client_id!r} is closed")
        payload = self.serde.serialize(value)
        key_bytes = serialize_key(self.serde, key)
        metadata = self.broker.produce(
            topic, payload, key=key_bytes, partition=partition, timestamp=timestamp
        )
        self.bytes_sent += metadata.serialized_size
        self.records_sent += 1
        return metadata

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (
            f"Producer(client_id={self.client_id!r}, "
            f"records_sent={self.records_sent})"
        )
