"""In-process event-streaming substrate (the Apache Kafka substitute).

CAD3 uses Kafka as a partitioned, append-only pub/sub log: producers on
vehicles push telemetry to ``IN-DATA``, the detection pipeline writes
warnings to ``OUT-DATA`` and inter-RSU summaries to ``CO-DATA``, and
consumers poll.  This package implements those semantics in-process:

- :mod:`repro.streaming.records` — producer/consumer record types.
- :mod:`repro.streaming.serde` — serializers (JSON is the default, as
  in the paper's implementation).
- :mod:`repro.streaming.topic` — partitioned append-only logs with
  key-hash routing.
- :mod:`repro.streaming.broker` — topic management, produce/fetch,
  committed offsets for consumer groups, byte accounting.
- :mod:`repro.streaming.producer` / :mod:`repro.streaming.consumer` —
  client API mirroring ``kafka-python``.
- :mod:`repro.streaming.cluster` — a set of brokers addressed by
  topic, mirroring the paper's "2 servers (Brokers) acting as motorway
  and motorway-link RSUs".
"""

from repro.streaming.broker import (
    Broker,
    BrokerError,
    BrokerUnavailable,
    TopicNotFound,
)
from repro.streaming.cluster import Cluster
from repro.streaming.consumer import Consumer
from repro.streaming.producer import Producer, RetryPolicy
from repro.streaming.records import ConsumerRecord, RecordMetadata
from repro.streaming.serde import JsonSerde, RawSerde, Serde
from repro.streaming.topic import Partition, Topic

__all__ = [
    "Broker",
    "BrokerError",
    "BrokerUnavailable",
    "Cluster",
    "Consumer",
    "ConsumerRecord",
    "JsonSerde",
    "Partition",
    "Producer",
    "RawSerde",
    "RecordMetadata",
    "RetryPolicy",
    "Serde",
    "Topic",
    "TopicNotFound",
]
