"""Comm-budget vs. detection-accuracy Pareto sweep for CO-DATA.

The bandwidth-adaptive collaboration plane (:mod:`repro.core.collab`)
trades CO-DATA bytes for summary freshness along three axes — utility
gating, delta encoding, and priority scheduling.  This harness runs the
5-RSU corridor at a send-everything refresh baseline plus a ladder of
gated budget points and reports the frontier: bytes per detected frame
against the link RSU's online detection accuracy, with the conservation
audit run at every point so a byte saved is never a summary silently
dropped.

The *knee* is the cheapest point whose accuracy stays within
``accuracy_budget_pp`` (default 0.5 pp) of the baseline — the number
``BENCH_7`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.collab import CollabConfig
from repro.core.system import TestbedScenario, default_training_dataset
from repro.obs.audit import audit_scenario

#: The RSU whose online accuracy the frontier tracks — the corridor's
#: motorway-link node, the only one that *consumes* CO-DATA summaries.
LINK_RSU = "rsu-mw-link"

#: Default budget ladder: (label, gate_threshold, max_silence_s).
#: The baseline is prepended by the sweep itself and is NOT listed here.
DEFAULT_BUDGETS: Tuple[Tuple[str, float, Optional[float]], ...] = (
    ("tau=0.05", 0.05, None),
    ("tau=0.15", 0.15, None),
    ("tau=0.30", 0.30, None),
    ("tau=0.30/silence=4s", 0.30, 4.0),
    ("tau=0.60/silence=4s", 0.60, 4.0),
    ("tau=1.00/silence=6s", 1.00, 6.0),
)


@dataclass
class BudgetPoint:
    """One point of the comm-budget frontier."""

    label: str
    gate_threshold: float
    max_silence_s: Optional[float]
    delta_encoding: bool
    priority: bool
    co_bytes_sent: int
    co_bytes_suppressed: int
    co_msgs_gated: int
    co_stale_dropped: int
    summaries_sent: int
    summaries_received: int
    n_events: int
    link_accuracy: float
    audit_ok: bool

    @property
    def bytes_per_frame(self) -> float:
        """CO-DATA bytes spent per telemetry record detected."""
        return self.co_bytes_sent / self.n_events if self.n_events else 0.0

    def format_row(self) -> str:
        silence = (
            f"{self.max_silence_s:.1f}s" if self.max_silence_s else "auto"
        )
        return (
            f"| {self.label} | {self.gate_threshold:.2f} | {silence} "
            f"| {self.co_bytes_sent} | {self.bytes_per_frame:.3f} "
            f"| {self.co_msgs_gated} | {self.link_accuracy:.4f} "
            f"| {'ok' if self.audit_ok else 'FAIL'} |"
        )


@dataclass
class CollabBudgetResult:
    """The full frontier; ``points[0]`` is the send-all baseline."""

    points: List[BudgetPoint] = field(default_factory=list)
    accuracy_budget_pp: float = 0.5
    n_vehicles_per_rsu: int = 0
    duration_s: float = 0.0
    seed: int = 0

    @property
    def baseline(self) -> BudgetPoint:
        return self.points[0]

    @property
    def knee(self) -> BudgetPoint:
        """Cheapest point within the accuracy budget of the baseline."""
        budget = self.accuracy_budget_pp / 100.0
        eligible = [
            point
            for point in self.points[1:]
            if self.baseline.link_accuracy - point.link_accuracy <= budget
        ]
        if not eligible:
            return self.baseline
        return min(eligible, key=lambda point: point.co_bytes_sent)

    @property
    def knee_byte_reduction(self) -> float:
        """Baseline-to-knee bytes/frame ratio (>1 means cheaper)."""
        knee = self.knee
        if knee.bytes_per_frame <= 0.0:
            return float("inf") if self.baseline.bytes_per_frame else 1.0
        return self.baseline.bytes_per_frame / knee.bytes_per_frame

    @property
    def knee_accuracy_loss_pp(self) -> float:
        return 100.0 * (self.baseline.link_accuracy - self.knee.link_accuracy)

    @property
    def audits_ok(self) -> bool:
        return all(point.audit_ok for point in self.points)

    def format_markdown(self) -> str:
        lines = [
            "# CO-DATA comm-budget frontier",
            "",
            f"Corridor: {self.n_vehicles_per_rsu} vehicles/RSU, "
            f"{self.duration_s:.0f}s, seed {self.seed}.  Knee = cheapest "
            f"point within {self.accuracy_budget_pp} pp of baseline "
            "accuracy.",
            "",
            "| point | tau | silence | co bytes | bytes/frame | gated "
            "| link acc | audit |",
            "|---|---|---|---|---|---|---|---|",
        ]
        lines.extend(point.format_row() for point in self.points)
        knee = self.knee
        lines += [
            "",
            f"Knee: **{knee.label}** — "
            f"{self.knee_byte_reduction:.2f}x fewer CO-DATA bytes/frame "
            f"at {self.knee_accuracy_loss_pp:+.2f} pp accuracy "
            f"({'all audits green' if self.audits_ok else 'AUDIT FAILURES'}).",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "n_vehicles_per_rsu": self.n_vehicles_per_rsu,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "accuracy_budget_pp": self.accuracy_budget_pp,
            "points": [
                {
                    "label": point.label,
                    "gate_threshold": point.gate_threshold,
                    "max_silence_s": point.max_silence_s,
                    "delta_encoding": point.delta_encoding,
                    "priority": point.priority,
                    "co_bytes_sent": point.co_bytes_sent,
                    "co_bytes_suppressed": point.co_bytes_suppressed,
                    "co_msgs_gated": point.co_msgs_gated,
                    "co_stale_dropped": point.co_stale_dropped,
                    "summaries_sent": point.summaries_sent,
                    "summaries_received": point.summaries_received,
                    "n_events": point.n_events,
                    "bytes_per_frame": point.bytes_per_frame,
                    "link_accuracy": point.link_accuracy,
                    "audit_ok": point.audit_ok,
                }
                for point in self.points
            ],
            "knee": self.knee.label,
            "knee_byte_reduction": self.knee_byte_reduction,
            "knee_accuracy_loss_pp": self.knee_accuracy_loss_pp,
            "audits_ok": self.audits_ok,
        }


def _run_point(
    label: str,
    collab: CollabConfig,
    n_vehicles_per_rsu: int,
    duration_s: float,
    seed: int,
    handover_fraction: float,
    dataset,
) -> BudgetPoint:
    scenario = (
        TestbedScenario.builder()
        .vehicles(n_vehicles_per_rsu)
        .duration(duration_s)
        .seed(seed)
        .handover(handover_fraction)
        .observe()
        .collab(collab)
        .corridor(motorways=4, dataset=dataset)
    )
    result = scenario.run()
    audit_ok = audit_scenario(scenario).ok
    metrics = result.rsu_metrics
    link = metrics[LINK_RSU]
    if link.detection is None:
        raise RuntimeError(
            "link RSU saw no labelled events — the sweep needs a "
            "labelled replay dataset"
        )
    return BudgetPoint(
        label=label,
        gate_threshold=collab.gate_threshold,
        max_silence_s=collab.max_silence_s,
        delta_encoding=collab.delta_encoding,
        priority=collab.priority,
        co_bytes_sent=sum(m.co_bytes_sent for m in metrics.values()),
        co_bytes_suppressed=sum(
            m.co_bytes_suppressed for m in metrics.values()
        ),
        co_msgs_gated=sum(m.co_msgs_gated for m in metrics.values()),
        co_stale_dropped=sum(m.co_stale_dropped for m in metrics.values()),
        summaries_sent=sum(m.summaries_sent for m in metrics.values()),
        summaries_received=link.summaries_received,
        n_events=sum(m.n_events for m in metrics.values()),
        link_accuracy=link.detection.accuracy,
        audit_ok=audit_ok,
    )


def collab_budget_sweep(
    n_vehicles_per_rsu: int = 24,
    duration_s: float = 12.0,
    seed: int = 7,
    handover_fraction: float = 0.25,
    refresh_interval_s: float = 0.5,
    budgets: Sequence[Tuple[str, float, Optional[float]]] = DEFAULT_BUDGETS,
    accuracy_budget_pp: float = 0.5,
    dataset=None,
) -> CollabBudgetResult:
    """Sweep the CO-DATA comm budget over the 5-RSU corridor.

    The baseline re-broadcasts every tracked car's full summary each
    refresh interval (gating, delta, and priority all off); each budget
    point turns all three on at the given ``(gate_threshold,
    max_silence_s)``.  Everything else — workload, seed, handover
    schedule — is held fixed, so byte and accuracy deltas are
    attributable to the plane alone.
    """
    dataset = dataset or default_training_dataset(seed=11, n_cars=40)
    result = CollabBudgetResult(
        accuracy_budget_pp=accuracy_budget_pp,
        n_vehicles_per_rsu=n_vehicles_per_rsu,
        duration_s=duration_s,
        seed=seed,
    )
    baseline = CollabConfig(
        mode="refresh", refresh_interval_s=refresh_interval_s
    )
    result.points.append(
        _run_point(
            "baseline",
            baseline,
            n_vehicles_per_rsu,
            duration_s,
            seed,
            handover_fraction,
            dataset,
        )
    )
    for label, threshold, silence in budgets:
        collab = CollabConfig(
            mode="refresh",
            refresh_interval_s=refresh_interval_s,
            gate_threshold=threshold,
            max_silence_s=silence,
            delta_encoding=True,
            priority=True,
        )
        result.points.append(
            _run_point(
                label,
                collab,
                n_vehicles_per_rsu,
                duration_s,
                seed,
                handover_fraction,
                dataset,
            )
        )
    return result
