"""Fig. 6a / Fig. 6c: latency and bandwidth vs. number of vehicles.

One sweep produces both figures: for each vehicle count the testbed
simulation reports Tx latency, processing time, end-to-end latency
(Fig. 6a) and per-vehicle / total bandwidth (Fig. 6c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.system import TestbedScenario, default_training_dataset

#: The paper sweeps 8 to 256 vehicles.
PAPER_VEHICLE_COUNTS = (8, 16, 32, 64, 128, 256)


@dataclass
class Fig6aRow:
    """One x-axis point of Fig. 6a + Fig. 6c."""

    n_vehicles: int
    tx_ms: float
    processing_ms: float
    queuing_dissemination_ms: float
    total_ms: float
    total_std_ms: float
    per_vehicle_bandwidth_kbps: float
    total_bandwidth_mbps: float

    def format_row(self) -> str:
        return (
            f"{self.n_vehicles:>5}  tx={self.tx_ms:6.2f}ms  "
            f"proc={self.processing_ms:6.2f}ms  "
            f"queue+diss={self.queuing_dissemination_ms:6.2f}ms  "
            f"total={self.total_ms:6.2f}ms (sd {self.total_std_ms:.1f})  "
            f"bw/veh={self.per_vehicle_bandwidth_kbps:5.1f}Kbps  "
            f"bw={self.total_bandwidth_mbps:5.2f}Mbps"
        )


def fig6a_latency_sweep(
    vehicle_counts: Sequence[int] = PAPER_VEHICLE_COUNTS,
    duration_s: float = 5.0,
    seed: int = 7,
    dataset=None,
) -> List[Fig6aRow]:
    """Run the single-RSU testbed at each vehicle count.

    Returns one row per count, in order.  A shared training dataset is
    built once (detection quality is irrelevant here; the models just
    need to be fitted).
    """
    dataset = dataset or default_training_dataset(seed=11, n_cars=80)
    rows = []
    for count in vehicle_counts:
        result = (
            TestbedScenario.builder()
            .vehicles(count)
            .duration(duration_s)
            .seed(seed)
            .single_rsu(dataset=dataset)
            .run()
        )
        e2e = result.e2e_latencies_ms
        total_ms = float(e2e.mean()) if e2e.size else 0.0
        total_std = float(e2e.std()) if e2e.size else 0.0
        tx = result.mean_tx_ms()
        processing = result.mean_processing_ms()
        rows.append(
            Fig6aRow(
                n_vehicles=count,
                tx_ms=tx,
                processing_ms=processing,
                queuing_dissemination_ms=max(0.0, total_ms - tx - processing),
                total_ms=total_ms,
                total_std_ms=total_std,
                per_vehicle_bandwidth_kbps=result.per_vehicle_bandwidth_bps()
                / 1e3,
                total_bandwidth_mbps=result.total_bandwidth_bps() / 1e6,
            )
        )
    return rows


def format_fig6a(rows: List[Fig6aRow]) -> str:
    return "\n".join(row.format_row() for row in rows)
