"""Fig. 6b / Fig. 6d: the 5-RSU collaborative topology.

The paper runs 5 Kafka brokers as 5 RSUs — a motorway-link RSU
connected to 4 motorway RSUs, 128 producers each — and reports the
dissemination latency per RSU type (Fig. 6b) and the per-RSU received
bandwidth (Fig. 6d), with the link RSU slightly higher thanks to
CO-DATA collaboration traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.system import TestbedScenario, default_training_dataset


@dataclass
class RsuRow:
    """One bar of Fig. 6b/6d."""

    name: str
    dissemination_ms: float
    dissemination_std_ms: float
    bandwidth_mbps: float
    summaries_sent: int
    summaries_received: int

    def format_row(self) -> str:
        return (
            f"{self.name:<14} diss={self.dissemination_ms:6.2f}ms "
            f"(sd {self.dissemination_std_ms:4.2f})  "
            f"bw={self.bandwidth_mbps:5.3f}Mbps  "
            f"co-data sent/recv={self.summaries_sent}/{self.summaries_received}"
        )


@dataclass
class CorridorResult:
    rows: List[RsuRow] = field(default_factory=list)
    mean_e2e_ms: float = 0.0

    def row(self, name: str) -> RsuRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no RSU row named {name!r}")

    @property
    def link_row(self) -> RsuRow:
        return self.row("rsu-mw-link")

    @property
    def motorway_rows(self) -> List[RsuRow]:
        return [row for row in self.rows if row.name != "rsu-mw-link"]

    def format_table(self) -> str:
        return "\n".join(row.format_row() for row in self.rows)


def fig6bd_corridor(
    n_vehicles_per_rsu: int = 128,
    duration_s: float = 5.0,
    seed: int = 7,
    handover_fraction: float = 0.25,
    motorways: int = 4,
    dataset=None,
) -> CorridorResult:
    """Run the 5-RSU topology and aggregate per-RSU measurements."""
    dataset = dataset or default_training_dataset(seed=11, n_cars=80)
    scenario = (
        TestbedScenario.builder()
        .vehicles(n_vehicles_per_rsu)
        .duration(duration_s)
        .seed(seed)
        .handover(handover_fraction)
        .corridor(motorways=motorways, dataset=dataset)
    )
    result = scenario.run()

    # Dissemination latency per RSU: attribute each vehicle's samples
    # to the RSU currently serving it (the paper measures per-RSU
    # delivery of warnings).
    per_rsu_diss: Dict[str, List[float]] = {name: [] for name in result.rsu_metrics}
    for vehicle in scenario.vehicles:
        per_rsu_diss[vehicle.rsu.name].extend(
            lat * 1e3 for lat in vehicle.stats.dissemination_latencies_s
        )

    corridor = CorridorResult(mean_e2e_ms=result.mean_e2e_ms())
    for name in sorted(result.rsu_metrics):
        metrics = result.rsu_metrics[name]
        samples = np.asarray(per_rsu_diss[name])
        corridor.rows.append(
            RsuRow(
                name=name,
                dissemination_ms=float(samples.mean()) if samples.size else 0.0,
                dissemination_std_ms=float(samples.std()) if samples.size else 0.0,
                bandwidth_mbps=metrics.bandwidth_in_bps / 1e6,
                summaries_sent=metrics.summaries_sent,
                summaries_received=metrics.summaries_received,
            )
        )
    return corridor
