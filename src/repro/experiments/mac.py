"""Eq. 5-6: analytic medium-access times.

Reproduces the paper's two quoted numbers (92.62 ms at "MCS 3",
54.28 ms at "MCS 8" for 256 vehicles) and the Sec. VII-B dense-
deployment claim (400 vehicles under 85 ms at MCS 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.net.dsrc import (
    PAPER_MCS_3,
    PAPER_MCS_8,
    DsrcMacModel,
    McsScheme,
)


@dataclass
class Eq5Row:
    """Access time for one (vehicle count, MCS) point."""

    n_vehicles: int
    mcs_name: str
    data_rate_mbps: float
    access_time_ms: float
    fits_10hz: bool

    def format_row(self) -> str:
        ok = "yes" if self.fits_10hz else "NO"
        return (
            f"{self.n_vehicles:>5} vehicles @ {self.mcs_name:<6} "
            f"({self.data_rate_mbps:4.1f} Mb/s): "
            f"{self.access_time_ms:7.2f} ms  fits 10 Hz: {ok}"
        )


def eq5_access_times(
    vehicle_counts: Sequence[int] = (8, 64, 256, 400),
    schemes: Sequence[McsScheme] = (PAPER_MCS_3, PAPER_MCS_8),
    payload_bytes: int = 200,
    model: DsrcMacModel = None,
) -> List[Eq5Row]:
    """Evaluate Eq. 5 over a (count, MCS) grid."""
    model = model or DsrcMacModel()
    rows = []
    for mcs in schemes:
        for count in vehicle_counts:
            access = model.channel_access_time_s(count, mcs, payload_bytes)
            rows.append(
                Eq5Row(
                    n_vehicles=count,
                    mcs_name=f"MCS {mcs.index}",
                    data_rate_mbps=mcs.data_rate_bps / 1e6,
                    access_time_ms=access * 1e3,
                    fits_10hz=model.supports_update_rate(
                        count, 10.0, mcs, payload_bytes
                    ),
                )
            )
    return rows


def format_eq5(rows: List[Eq5Row]) -> str:
    return "\n".join(row.format_row() for row in rows)
