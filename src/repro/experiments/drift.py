"""Drift adaptation: static vs. online detectors under changing
patterns.

The paper's Sec. II motivates CAD3 with *changing patterns* — driving
behaviour shifts with the hour, the day, and road conditions — but its
pipeline trains offline once.  This experiment quantifies what that
costs: a road's speed regime shifts mid-stream (e.g. roadworks or
weather capping speeds), and we compare

- a **static** AD3 detector trained on the pre-drift regime,
- a **cumulative** online detector (partial_fit, never forgets),
- a **window** online detector (sliding-window refits, forgets).

Ground truth follows the oracle definition: each regime labelled by
the sigma-cutoff of *its own* distribution, which is exactly what the
paper's offline labelling would produce if retrained per regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.detector import AD3Detector
from repro.core.online import OnlineAD3Detector
from repro.dataset.generator import DatasetGenerator, GeneratorConfig
from repro.dataset.preprocess import SigmaCutoffLabeler
from repro.dataset.schema import TelemetryRecord
from repro.dataset.speed_profiles import SpeedProfileLibrary
from repro.geo.network_builder import CityNetworkBuilder
from repro.geo.roadnet import FREE_FLOW_KMH, RoadType

DETECTOR_NAMES = ("static", "cumulative", "window")


@dataclass
class DriftBucket:
    """Accuracy of each detector over one evaluation bucket."""

    index: int
    post_drift: bool
    accuracy: Dict[str, float]


@dataclass
class DriftResult:
    buckets: List[DriftBucket] = field(default_factory=list)
    drift_bucket: int = 0

    def mean_accuracy(self, name: str, post_drift: bool) -> float:
        values = [
            bucket.accuracy[name]
            for bucket in self.buckets
            if bucket.post_drift is post_drift and name in bucket.accuracy
        ]
        return float(np.mean(values)) if values else 0.0

    def format_series(self) -> str:
        header = f"{'bucket':>7} {'phase':<6}" + "".join(
            f"{name:>12}" for name in DETECTOR_NAMES
        )
        lines = [header]
        for bucket in self.buckets:
            phase = "after" if bucket.post_drift else "before"
            lines.append(
                f"{bucket.index:>7} {phase:<6}"
                + "".join(
                    f"{bucket.accuracy.get(name, float('nan')):>12.3f}"
                    for name in DETECTOR_NAMES
                )
            )
        return "\n".join(lines)


def _regime_records(
    speed_scale: float, n_cars: int, seed: int
) -> List[TelemetryRecord]:
    """Motorway records from a regime with scaled base speeds."""
    network = CityNetworkBuilder(seed=seed).build_corridor()
    profiles = SpeedProfileLibrary(
        {
            road_type: FREE_FLOW_KMH[road_type] * speed_scale
            for road_type in RoadType
        }
    )
    generator = DatasetGenerator(
        network,
        GeneratorConfig(
            n_cars=n_cars, trips_per_car=6, seed=seed, erroneous_rate=0.0
        ),
        profiles=profiles,
    )
    dataset = generator.generate()
    records = [
        r for r in dataset.records if r.road_type is RoadType.MOTORWAY
    ]
    # Oracle labels: the regime's own sigma-cutoff.
    labeler = SigmaCutoffLabeler().fit(records)
    return labeler.label_all(records)


def drift_adaptation(
    n_cars: int = 150,
    drift_scale: float = 0.7,
    bucket_size: int = 2000,
    seed: int = 5,
) -> DriftResult:
    """Run the drift experiment.

    The stream is regime A (normal speeds) followed by regime B (base
    speeds scaled by ``drift_scale``).  The static detector trains on
    regime A's first half; online detectors consume the stream bucket
    by bucket, scoring each bucket *before* learning from it
    (prequential evaluation).
    """
    regime_a = _regime_records(1.0, n_cars, seed)
    regime_b = _regime_records(drift_scale, n_cars, seed + 1)

    half = len(regime_a) // 2
    static = AD3Detector(RoadType.MOTORWAY).fit(regime_a[:half])
    stream = regime_a[half:] + regime_b
    drift_at = len(regime_a) - half

    detectors = {
        "cumulative": OnlineAD3Detector(RoadType.MOTORWAY, mode="cumulative"),
        "window": OnlineAD3Detector(
            RoadType.MOTORWAY, mode="window", window=3000, refit_every=400
        ),
    }
    # Warm the online detectors on the static detector's training data
    # so all three start from the same regime-A knowledge.
    for detector in detectors.values():
        detector.observe(regime_a[:half])

    result = DriftResult(drift_bucket=drift_at // bucket_size)
    for index, start in enumerate(range(0, len(stream), bucket_size)):
        bucket_records = stream[start : start + bucket_size]
        if len(bucket_records) < bucket_size // 2:
            break
        y_true = np.array([r.label for r in bucket_records])
        accuracy = {
            "static": float(
                np.mean(static.predict(bucket_records) == y_true)
            )
        }
        for name, detector in detectors.items():
            if detector.ready:
                predictions = detector.predict(bucket_records)
                accuracy[name] = float(np.mean(predictions == y_true))
            detector.observe(bucket_records)
        result.buckets.append(
            DriftBucket(
                index=index,
                post_drift=start >= drift_at,
                accuracy=accuracy,
            )
        )
    return result
