"""City-scale feasibility: the paper's peak-hour claims.

Two macroscopic claims close the paper's argument:

1. "With a dense deployment of edge nodes, CAD3 can scale up to the
   size of Shenzhen ... over 2 million concurrent vehicles at peak
   hours."
2. "With a single RSU per road trunk, CAD3 can support a total of 13
   million concurrent road users ... while exploiting only 1/5 of the
   DSRC bandwidth."

This harness distributes a peak-hour vehicle population over the
planned RSU deployment proportionally to each road type's traffic
density (Table V's Density column) and checks every class stays within
the demonstrated per-RSU envelope (256 vehicles under 50 ms,
~5 Mb/s of 27 Mb/s DSRC).

This is arithmetic over measured envelopes; the *executed* version of
the scaled corridor — the same spec run through the sharded
multi-process engine and checked bit-identical against the
single-process run — lives in :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.deploy.placement import PlacementPlan
from repro.experiments.deployment import table5_placement
from repro.geo.roadnet import RoadType
from repro.net.dsrc import DSRC_BANDWIDTH_BPS

#: The paper's peak-hour figure for Shenzhen ("over 2 million on the
#: road in the morning rush").
SHENZHEN_PEAK_VEHICLES = 2_000_000

#: Measured per-vehicle bandwidth (Fig. 6c regime).
PER_VEHICLE_BPS = 20_000.0


@dataclass
class RoadTypeLoad:
    """Peak-hour load assessment for one road type."""

    road_type: RoadType
    vehicles: int
    rsus: int
    vehicles_per_rsu: float
    bandwidth_per_rsu_bps: float
    within_capacity: bool

    def format_row(self) -> str:
        ok = "ok" if self.within_capacity else "OVER"
        return (
            f"{self.road_type.value:<16}{self.vehicles:>10,}"
            f"{self.rsus:>7}{self.vehicles_per_rsu:>10.1f}"
            f"{self.bandwidth_per_rsu_bps / 1e6:>9.2f}Mb/s  {ok}"
        )


@dataclass
class PeakHourAssessment:
    """Result of :func:`peak_hour_feasibility`."""

    total_vehicles: int
    rows: List[RoadTypeLoad] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return all(row.within_capacity for row in self.rows)

    @property
    def worst_utilisation(self) -> float:
        """Max vehicles-per-RSU over the demonstrated 256 envelope."""
        return max(row.vehicles_per_rsu / 256.0 for row in self.rows)

    def format_table(self) -> str:
        header = (
            f"{'Road type':<16}{'vehicles':>10}{'RSUs':>7}"
            f"{'veh/RSU':>10}{'bw/RSU':>13}"
        )
        return "\n".join(
            [header] + [row.format_row() for row in self.rows]
        )


def peak_hour_feasibility(
    total_vehicles: int = SHENZHEN_PEAK_VEHICLES,
    plan: Optional[PlacementPlan] = None,
    vehicles_per_rsu_limit: int = 256,
    per_vehicle_bps: float = PER_VEHICLE_BPS,
) -> PeakHourAssessment:
    """Spread ``total_vehicles`` over the deployment and check limits.

    Vehicles are distributed across road types by Table V's traffic
    density and uniformly across each type's RSUs — the paper's
    implicit model (one RSU per trunk, traffic proportional to
    observed density).
    """
    plan = plan or table5_placement()
    total_density = sum(row.traffic_density for row in plan.rows)
    assessment = PeakHourAssessment(total_vehicles=total_vehicles)
    for row in plan.rows:
        share = row.traffic_density / total_density
        vehicles = int(round(total_vehicles * share))
        per_rsu = vehicles / row.rsus_required
        bandwidth = per_rsu * per_vehicle_bps
        assessment.rows.append(
            RoadTypeLoad(
                road_type=row.road_type,
                vehicles=vehicles,
                rsus=row.rsus_required,
                vehicles_per_rsu=per_rsu,
                bandwidth_per_rsu_bps=bandwidth,
                within_capacity=(
                    per_rsu <= vehicles_per_rsu_limit
                    and bandwidth <= DSRC_BANDWIDTH_BPS
                ),
            )
        )
    return assessment


def max_supported_vehicles(
    plan: Optional[PlacementPlan] = None,
    vehicles_per_rsu_limit: int = 256,
) -> int:
    """Largest citywide population the deployment serves, given the
    density-proportional spreading model.

    The binding constraint is the road type whose density-to-RSU ratio
    is worst; scale until it saturates.
    """
    plan = plan or table5_placement()
    total_density = sum(row.traffic_density for row in plan.rows)
    limit = float("inf")
    for row in plan.rows:
        share = row.traffic_density / total_density
        # share * N / rsus <= limit  =>  N <= limit * rsus / share
        limit = min(limit, vehicles_per_rsu_limit * row.rsus_required / share)
    return int(limit)
