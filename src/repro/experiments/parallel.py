"""Sharded-corridor speedup: the executed city-scale harness.

:mod:`repro.experiments.scale` argues city-scale feasibility with
arithmetic over the per-RSU envelope; this module *executes* the
scaled corridor instead.  One run of :func:`parallel_corridor` drives
the same spec through both engines — the single-process
:class:`~repro.core.system.TestbedScenario` and the multi-process
:class:`~repro.parallel.engine.ShardedScenario` — on the same dataset,
checks the parallel run is warning-for-warning identical, and scores
the speedup.

Two speedup figures are reported, because they answer different
questions:

- **critical-path speedup** — serial CPU seconds divided by the
  parallel run's CPU critical path (slowest shard's build, plus per
  barrier window the slowest shard's step plus the engine's routing).
  This is what the wall clock converges to on a host with at least
  ``workers`` free cores, and it is the honest figure on a smaller
  host, where workers time-share cores and measured wall degenerates
  to the CPU *sum*.
- **measured wall speedup** — serial wall divided by parallel wall on
  *this* host, reported alongside ``host_cpus`` so the reader can see
  when the two must disagree.

The parallel critical path deliberately *includes* the worker-side
scenario build while the serial figure starts from a built scenario —
the bias runs against the parallel engine, so the pinned speedup is
conservative.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.scenario import ScenarioBuilder
from repro.core.system import default_training_dataset


@dataclass
class ParallelReport:
    """One serial-vs-sharded corridor comparison, scored."""

    motorways: int
    n_vehicles: int
    duration_s: float
    workers: int
    host_cpus: int

    serial_wall_s: float = 0.0
    serial_cpu_s: float = 0.0
    parallel_wall_s: float = 0.0
    critical_path_cpu_s: float = 0.0
    total_worker_cpu_s: float = 0.0
    engine_cpu_s: float = 0.0
    build_cpu_s: List[float] = field(default_factory=list)

    windows: int = 0
    records: int = 0
    warnings: int = 0
    undelivered_frames: int = 0
    warnings_identical: bool = False
    #: RSU names per shard, for the report.
    shard_assignments: List[List[str]] = field(default_factory=list)
    #: Per-repeat paired (serial_cpu / critical_path_cpu) ratios; the
    #: headline figures above come from the median-ratio repeat.
    speedup_samples: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def critical_path_speedup(self) -> float:
        """Serial CPU over the parallel CPU critical path."""
        if self.critical_path_cpu_s <= 0:
            return 0.0
        return self.serial_cpu_s / self.critical_path_cpu_s

    @property
    def measured_wall_speedup(self) -> float:
        if self.parallel_wall_s <= 0:
            return 0.0
        return self.serial_wall_s / self.parallel_wall_s

    @property
    def work_inflation(self) -> float:
        """Total parallel CPU over serial CPU (>1 = sharding overhead)."""
        if self.serial_cpu_s <= 0:
            return 0.0
        return self.total_worker_cpu_s / self.serial_cpu_s

    @property
    def serial_records_per_s(self) -> float:
        return self.records / self.serial_cpu_s if self.serial_cpu_s else 0.0

    @property
    def parallel_records_per_s(self) -> float:
        """Aggregate telemetry throughput at the CPU critical path."""
        if not self.critical_path_cpu_s:
            return 0.0
        return self.records / self.critical_path_cpu_s

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "motorways": self.motorways,
            "n_vehicles": self.n_vehicles,
            "duration_s": self.duration_s,
            "workers": self.workers,
            "host_cpus": self.host_cpus,
            "serial_wall_s": self.serial_wall_s,
            "serial_cpu_s": self.serial_cpu_s,
            "parallel_wall_s": self.parallel_wall_s,
            "critical_path_cpu_s": self.critical_path_cpu_s,
            "total_worker_cpu_s": self.total_worker_cpu_s,
            "windows": self.windows,
            "records": self.records,
            "warnings": self.warnings,
            "undelivered_frames": self.undelivered_frames,
            "warnings_identical": self.warnings_identical,
            "shard_assignments": [list(s) for s in self.shard_assignments],
            "critical_path_speedup": self.critical_path_speedup,
            "measured_wall_speedup": self.measured_wall_speedup,
            "work_inflation": self.work_inflation,
            "speedup_samples": list(self.speedup_samples),
        }

    def format_report(self) -> str:
        lines = [
            f"corridor: {self.motorways} motorways + link, "
            f"{self.n_vehicles} vehicles/RSU, {self.duration_s:g}s sim",
            f"shards: {self.workers} workers on a {self.host_cpus}-cpu host",
        ]
        for index, names in enumerate(self.shard_assignments):
            lines.append(f"  shard {index}: {', '.join(names)}")
        lines += [
            f"serial:    {self.serial_cpu_s:7.3f}s cpu  "
            f"{self.serial_wall_s:7.3f}s wall  "
            f"{self.serial_records_per_s:>9,.0f} rec/s",
            f"parallel:  {self.critical_path_cpu_s:7.3f}s critical-path cpu  "
            f"{self.parallel_wall_s:7.3f}s wall  "
            f"{self.parallel_records_per_s:>9,.0f} rec/s",
            f"windows: {self.windows}  records: {self.records:,}  "
            f"warnings: {self.warnings:,}  "
            f"undelivered frames: {self.undelivered_frames}",
            f"critical-path speedup: {self.critical_path_speedup:.2f}x  "
            f"(measured wall {self.measured_wall_speedup:.2f}x, "
            f"work inflation {self.work_inflation:.2f}x)",
            "speedup samples: "
            + ", ".join(f"{s:.2f}x" for s in self.speedup_samples),
            "warnings bit-identical to single-process: "
            + ("YES" if self.warnings_identical else "NO"),
        ]
        return "\n".join(lines)


def _builder(
    n_vehicles: int,
    duration_s: float,
    seed: int,
    handover_fraction: float,
) -> ScenarioBuilder:
    return (
        ScenarioBuilder()
        .vehicles(n_vehicles)
        .duration(duration_s)
        .seed(seed)
        .handover(handover_fraction)
        .columnar(True)
        .serde("struct")
    )


def parallel_corridor(
    n_vehicles: int = 16,
    duration_s: float = 4.0,
    motorways: int = 8,
    workers: int = 4,
    seed: int = 7,
    handover_fraction: float = 0.25,
    dataset=None,
    repeats: int = 1,
) -> ParallelReport:
    """Run the same corridor spec serially and sharded; score both.

    The dataset and fitted detectors are built once and reused by both
    engines, so neither timing includes model training — only scenario
    execution (and, on the parallel side, the per-worker scenario
    build, see the module docstring).

    With ``repeats > 1``, each repeat times a fresh serial run and a
    fresh parallel run back to back, and the headline numbers are
    noise-floored: the serial CPU is the minimum across repeats (the
    ``timeit`` convention for deterministic work), and the parallel
    critical path is rebuilt from the *elementwise minimum* per
    (window, shard) CPU across repeats before taking each window's
    maximum.  The per-window work is deterministic — scheduling noise
    can only inflate a sample, never shrink it — so the minimum is the
    closest observation of the true cost, and taking it *before* the
    max removes the upward bias that contention puts on a
    sum-of-maxima.  The naive paired per-repeat ratios are kept in
    ``speedup_samples`` for transparency.  Every repeat is
    deterministic, so the equivalence checks must hold on all of them.
    """
    dataset = dataset or default_training_dataset(seed=11)
    repeats = max(1, int(repeats))

    samples = []
    warnings_identical = True
    for _ in range(repeats):
        serial = _builder(n_vehicles, duration_s, seed, handover_fraction)
        serial_scenario = serial.corridor(
            motorways=motorways, dataset=dataset
        )
        cpu0, wall0 = time.process_time(), time.perf_counter()
        serial_result = serial_scenario.run()
        serial_cpu = time.process_time() - cpu0
        serial_wall = time.perf_counter() - wall0
        serial_warnings: Dict[str, list] = {
            name: rsu.warning_log()
            for name, rsu in serial_scenario.rsus.items()
        }

        sharded = _builder(n_vehicles, duration_s, seed, handover_fraction)
        scenario = sharded.shards(workers).corridor(
            motorways=motorways, dataset=dataset
        )
        wall0 = time.perf_counter()
        parallel_result = scenario.run()
        parallel_wall = time.perf_counter() - wall0

        records = sum(
            stats.records_sent
            for stats in parallel_result.vehicle_stats.values()
        )
        assert records == sum(
            stats.records_sent
            for stats in serial_result.vehicle_stats.values()
        ), "engines disagree on records sent"
        warnings_identical = warnings_identical and (
            scenario.warning_logs == serial_warnings
        )
        samples.append(
            (
                serial_cpu,
                serial_wall,
                parallel_wall,
                scenario,
                parallel_result,
                records,
            )
        )

    ratios = [
        cpu / scenario.critical_path_cpu_s()
        for cpu, _, _, scenario, _, _ in samples
    ]
    scenarios = [scenario for _, _, _, scenario, _, _ in samples]
    windows = len(scenarios[0].window_timings)
    assert all(
        len(s.window_timings) == windows for s in scenarios
    ), "repeats disagree on the barrier schedule"

    # Noise-floored timings (see docstring): elementwise min across
    # repeats, then the per-window max across shards.
    build_cpu = [
        min(s.build_cpu_s[shard] for s in scenarios)
        for shard in range(scenarios[0].n_shards)
    ]
    window_cpu = [
        [
            min(s.window_timings[w].worker_cpu_s[shard] for s in scenarios)
            for shard in range(scenarios[0].n_shards)
        ]
        for w in range(windows)
    ]
    engine_cpu = [
        min(s.window_timings[w].engine_cpu_s for s in scenarios)
        for w in range(windows)
    ]
    critical_path = max(build_cpu) + sum(
        max(cpu) + engine for cpu, engine in zip(window_cpu, engine_cpu)
    )
    total_worker = sum(build_cpu) + sum(map(sum, window_cpu))

    serial_cpu = min(cpu for cpu, _, _, _, _, _ in samples)
    serial_wall = min(wall for _, wall, _, _, _, _ in samples)
    parallel_wall = min(wall for _, _, wall, _, _, _ in samples)
    _, _, _, scenario, result, records = samples[0]

    return ParallelReport(
        motorways=motorways,
        n_vehicles=n_vehicles,
        duration_s=duration_s,
        workers=scenario.n_shards,
        host_cpus=os.cpu_count() or 1,
        serial_wall_s=serial_wall,
        serial_cpu_s=serial_cpu,
        parallel_wall_s=parallel_wall,
        critical_path_cpu_s=critical_path,
        total_worker_cpu_s=total_worker,
        engine_cpu_s=sum(engine_cpu),
        build_cpu_s=build_cpu,
        windows=windows,
        records=records,
        warnings=sum(m.warnings_issued for m in result.rsu_metrics.values()),
        undelivered_frames=scenario.undelivered_frames,
        warnings_identical=warnings_identical,
        shard_assignments=[
            list(names) for names in scenario.plan.assignments
        ],
        speedup_samples=[round(r, 3) for r in ratios],
    )
