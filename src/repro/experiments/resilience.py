"""The resilience experiment: fault injection on the corridor.

The paper's testbed never loses a broker; this experiment asks what
the edge deployment actually needs when one does.  A corridor run is
subjected to a named fault profile (broker crash + restart, RSU kill,
link partition, DSRC burst loss — see
:func:`repro.faults.events.corridor_profiles`), and the run is scored
on how it absorbed the faults:

- **recovery time** — crash to the first detection after restart;
- **records lost** — telemetry that never reached a detector;
- **duplicate detections** — the same telemetry record scored twice
  (must be zero: producer retries are deduplicated by broker-side
  sequence numbers);
- **warning delivery** vs. a fault-free baseline of the same spec.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.system import (
    ScenarioResult,
    TestbedScenario,
    default_training_dataset,
)
from repro.faults.events import profile as fault_profile


@dataclass
class ResilienceReport:
    """One fault-injected corridor run, scored."""

    profile: str
    #: Crash-to-first-detection per crashed-and-restarted RSU.
    recovery_time_s: Dict[str, float] = field(default_factory=dict)
    records_lost: int = 0
    records_retried: int = 0
    records_dropped: int = 0
    duplicates_rejected: int = 0
    #: Telemetry records detected more than once, across all RSUs.
    duplicate_detections: int = 0
    broker_crashes: int = 0
    summaries_lost: int = 0
    degraded_batches: int = 0
    warnings_delivered: int = 0
    #: Same spec, no faults (None if the baseline was skipped).
    baseline_warnings_delivered: Optional[int] = None
    fault_log: List[object] = field(default_factory=list)

    @property
    def max_recovery_time_s(self) -> Optional[float]:
        if not self.recovery_time_s:
            return None
        return max(self.recovery_time_s.values())

    @property
    def warning_delivery_ratio(self) -> Optional[float]:
        """Warnings delivered relative to the fault-free baseline."""
        if not self.baseline_warnings_delivered:
            return None
        return self.warnings_delivered / self.baseline_warnings_delivered

    def to_json(self) -> dict:
        return {
            "profile": self.profile,
            "recovery_time_s": dict(self.recovery_time_s),
            "max_recovery_time_s": self.max_recovery_time_s,
            "records_lost": self.records_lost,
            "records_retried": self.records_retried,
            "records_dropped": self.records_dropped,
            "duplicates_rejected": self.duplicates_rejected,
            "duplicate_detections": self.duplicate_detections,
            "broker_crashes": self.broker_crashes,
            "summaries_lost": self.summaries_lost,
            "degraded_batches": self.degraded_batches,
            "warnings_delivered": self.warnings_delivered,
            "baseline_warnings_delivered": self.baseline_warnings_delivered,
            "warning_delivery_ratio": self.warning_delivery_ratio,
            "fault_log": [
                {
                    "time_s": entry.time_s,
                    "kind": entry.kind,
                    "target": entry.target,
                    "detail": entry.detail,
                }
                for entry in self.fault_log
            ],
        }

    def format_report(self) -> str:
        lines = [f"fault profile: {self.profile}"]
        for entry in self.fault_log:
            lines.append(
                f"  t={entry.time_s:7.3f}s  {entry.kind:<16} "
                f"{entry.target} {entry.detail}"
            )
        for name, rec in sorted(self.recovery_time_s.items()):
            lines.append(f"recovery[{name}]: {rec * 1e3:.0f} ms")
        lines.append(
            f"records: lost={self.records_lost} "
            f"retried={self.records_retried} "
            f"dropped={self.records_dropped} "
            f"duplicates_rejected={self.duplicates_rejected}"
        )
        lines.append(
            f"duplicate detections: {self.duplicate_detections} "
            f"(sequence-number dedupe)"
        )
        lines.append(
            f"degraded batches: {self.degraded_batches}; "
            f"summaries lost: {self.summaries_lost}"
        )
        ratio = self.warning_delivery_ratio
        suffix = (
            f" ({ratio:.1%} of fault-free baseline)" if ratio is not None else ""
        )
        lines.append(f"warnings delivered: {self.warnings_delivered}{suffix}")
        return "\n".join(lines)


def count_duplicate_detections(scenario: TestbedScenario) -> int:
    """Telemetry records detected more than once, across all RSUs.

    Each replayed record is unique by ``(car_id, generated_at)`` —
    vehicles produce at most one record per instant — so any repeat in
    the union of the RSU event logs means one telemetry record was
    scored twice (a failed dedupe after a retried produce).
    """
    seen: Counter = Counter()
    for rsu in scenario.rsus.values():
        car_ids = rsu.events.car_ids()
        generated = rsu.events.generated_at()
        for car, gen in zip(car_ids.tolist(), generated.tolist()):
            seen[(car, gen)] += 1
    return sum(count - 1 for count in seen.values() if count > 1)


def _recovery_times(
    scenario: TestbedScenario, result: ScenarioResult
) -> Dict[str, float]:
    """Crash-to-first-detection for every crashed-and-restarted RSU."""
    crash_at: Dict[str, float] = {}
    for entry in result.resilience.fault_log:
        if entry.kind == "broker_crash" and entry.target not in crash_at:
            crash_at[entry.target] = entry.time_s
    recovery: Dict[str, float] = {}
    for name, restarted in result.resilience.restarted_at_s.items():
        rsu = scenario.rsus[name]
        detected = rsu.events.detected_at()
        after = detected[detected >= restarted]
        if after.size and name in crash_at:
            recovery[name] = float(after.min()) - crash_at[name]
    return recovery


def resilience_corridor(
    profile_name: str = "chaos",
    n_vehicles: int = 16,
    duration_s: float = 6.0,
    motorways: int = 2,
    seed: int = 7,
    dataset=None,
    with_baseline: bool = True,
) -> ResilienceReport:
    """Run the corridor under ``profile_name`` and score the damage."""
    dataset = dataset or default_training_dataset(seed=11, n_cars=60)

    def builder():
        # A quarter of each motorway's vehicles hand over to the link
        # RSU mid-run (the paper's corridor mobility), so CO-DATA
        # traffic crosses the wired links while the faults are active.
        return (
            TestbedScenario.builder()
            .vehicles(n_vehicles)
            .duration(duration_s)
            .seed(seed)
            .serde("struct")
            .handover(0.25)
        )

    scenario = (
        builder()
        .faults(fault_profile(profile_name, duration_s))
        .corridor(motorways=motorways, dataset=dataset)
    )
    result = scenario.run()
    res = result.resilience

    report = ResilienceReport(
        profile=profile_name,
        recovery_time_s=_recovery_times(scenario, result),
        records_lost=res.records_lost,
        records_retried=res.records_retried,
        records_dropped=res.records_dropped,
        duplicates_rejected=res.duplicates_rejected,
        duplicate_detections=count_duplicate_detections(scenario),
        broker_crashes=res.broker_crashes,
        summaries_lost=res.summaries_lost,
        degraded_batches=sum(
            rsu.degraded_batches for rsu in scenario.rsus.values()
        ),
        warnings_delivered=sum(
            stats.warnings_received
            for stats in result.vehicle_stats.values()
        ),
        fault_log=list(res.fault_log),
    )
    if with_baseline:
        baseline = builder().corridor(
            motorways=motorways, dataset=dataset
        ).run()
        report.baseline_warnings_delivered = sum(
            stats.warnings_received
            for stats in baseline.vehicle_stats.values()
        )
    return report
