"""Standard experiment datasets and Table III.

Experiments share workloads built here so their results are directly
comparable.  ``corridor_dataset`` is the microscopic workload of the
paper's testbed (vehicles flowing motorway -> motorway link).
"""

from __future__ import annotations

from typing import Optional

from repro.dataset.generator import DatasetGenerator, GeneratorConfig, SyntheticDataset
from repro.dataset.preprocess import Preprocessor
from repro.dataset.stats import DatasetStatistics, compute_statistics
from repro.geo.network_builder import CityNetworkBuilder
from repro.geo.roadnet import RoadNetwork


def corridor_dataset(
    n_cars: int = 300,
    trips_per_car: int = 8,
    seed: int = 1,
    erroneous_rate: float = 0.0,
    network: Optional[RoadNetwork] = None,
    labeled: bool = True,
) -> SyntheticDataset:
    """The standard motorway -> motorway-link workload, labelled.

    Defaults produce ~80 K records in a couple of seconds; the model
    benchmarks scale ``n_cars``/``trips_per_car`` up to the paper's
    500 K-sample evaluation set.
    """
    network = network or CityNetworkBuilder(seed=seed).build_corridor()
    generator = DatasetGenerator(
        network,
        GeneratorConfig(
            n_cars=n_cars,
            trips_per_car=trips_per_car,
            seed=seed,
            erroneous_rate=erroneous_rate,
        ),
    )
    dataset = generator.generate()
    if labeled:
        dataset.records = Preprocessor().run(dataset.records)
    return dataset


def table3_statistics(
    dataset: Optional[SyntheticDataset] = None,
) -> DatasetStatistics:
    """Table III: dataset statistics after filtering."""
    dataset = dataset or corridor_dataset(erroneous_rate=0.01)
    return compute_statistics(dataset.records)
