"""Fig. 7 / Table IV / Fig. 8: model-quality experiments.

- Fig. 7: accuracy and F1 of centralized vs. AD3 vs. CAD3 at the
  motorway-link RSU.
- Table IV: TP/FN rates and the Nilsson potential-accident estimate
  E(Lambda) per model.
- Fig. 8: the mesoscopic (driver-trip) view — per-point detections
  along one trip with an abnormal-driving episode, showing CAD3's
  stability versus AD3's fluctuation and the centralized model's
  unpredictability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accidents import AccidentEstimate, expected_accidents
from repro.core.centralized import CentralizedDetector
from repro.core.collaborative import CollaborativeDetector, summaries_from_upstream
from repro.core.detector import AD3Detector
from repro.dataset.generator import SyntheticDataset
from repro.dataset.schema import ABNORMAL, AnomalyKind, TelemetryRecord
from repro.experiments.datasets import corridor_dataset
from repro.geo.roadnet import RoadType
from repro.ml.metrics import BinaryClassificationReport, evaluate_binary

MODEL_NAMES = ("centralized", "ad3", "cad3")


@dataclass
class TrainedModels:
    """The three detectors, trained on one split."""

    centralized: CentralizedDetector
    ad3_motorway: AD3Detector
    ad3_link: AD3Detector
    cad3_link: CollaborativeDetector

    def predict_link(
        self,
        link_records: Sequence[TelemetryRecord],
        test_summaries: Dict[int, object],
    ) -> Dict[str, np.ndarray]:
        return {
            "centralized": self.centralized.predict(link_records),
            "ad3": self.ad3_link.predict(link_records),
            "cad3": self.cad3_link.predict(link_records, test_summaries),
        }


def train_models(
    train: Sequence[TelemetryRecord],
) -> TrainedModels:
    """Train all three models exactly as the paper describes."""
    motorway = [r for r in train if r.road_type is RoadType.MOTORWAY]
    link = [r for r in train if r.road_type is RoadType.MOTORWAY_LINK]
    centralized = CentralizedDetector().fit(list(train))
    ad3_motorway = AD3Detector(RoadType.MOTORWAY).fit(motorway)
    ad3_link = AD3Detector(RoadType.MOTORWAY_LINK).fit(link)
    train_summaries = summaries_from_upstream(ad3_motorway, motorway)
    cad3_link = CollaborativeDetector(
        RoadType.MOTORWAY_LINK, nb=ad3_link
    ).fit(link, train_summaries, refit_nb=False)
    return TrainedModels(
        centralized=centralized,
        ad3_motorway=ad3_motorway,
        ad3_link=ad3_link,
        cad3_link=cad3_link,
    )


@dataclass
class ModelComparison:
    """Fig. 7 + Table IV in one result."""

    reports: Dict[str, BinaryClassificationReport]
    accidents: Dict[str, AccidentEstimate]
    n_eval: int
    abnormal_fraction: float

    def format_fig7(self) -> str:
        lines = [f"evaluation records: {self.n_eval} "
                 f"({self.abnormal_fraction:.0%} abnormal)"]
        for name in MODEL_NAMES:
            report = self.reports[name]
            lines.append(
                f"{name:<12} accuracy={report.accuracy:.4f} f1={report.f1:.4f}"
            )
        return "\n".join(lines)

    def format_table4(self) -> str:
        lines = [
            f"{'Model':<12}{'TP Rate':>9}{'FN Rate':>9}{'E(Lambda)':>11}"
        ]
        for name in MODEL_NAMES:
            report = self.reports[name]
            estimate = self.accidents[name]
            lines.append(
                f"{name:<12}{report.tp_rate:>8.1%}{report.fn_rate:>8.1%}"
                f"{estimate.expected_accidents:>11.1f}"
            )
        return "\n".join(lines)


def fig7_table4_comparison(
    dataset: Optional[SyntheticDataset] = None,
    train_fraction: float = 0.8,
    seed: int = 0,
) -> ModelComparison:
    """Run the paper's model comparison end to end.

    Trains on ``train_fraction`` of trips, evaluates all three models
    on the motorway-link test records (the collaborating RSU's road,
    where the paper measures Fig. 7), and estimates Table IV's
    potential accidents from each model's false negatives.
    """
    dataset = dataset or corridor_dataset()
    train, test = dataset.split_by_trip(train_fraction, seed=seed)
    models = train_models(train)

    link_test = [r for r in test if r.road_type is RoadType.MOTORWAY_LINK]
    motorway_test = [r for r in test if r.road_type is RoadType.MOTORWAY]
    test_summaries = summaries_from_upstream(
        models.ad3_motorway, motorway_test
    )
    predictions = models.predict_link(link_test, test_summaries)
    y_true = np.array([r.label for r in link_test])

    reports = {}
    accidents = {}
    for name, y_pred in predictions.items():
        reports[name] = evaluate_binary(y_true, y_pred)
        accidents[name] = expected_accidents(link_test, y_true, y_pred)
    return ModelComparison(
        reports=reports,
        accidents=accidents,
        n_eval=len(link_test),
        abnormal_fraction=float(np.mean(y_true == ABNORMAL)),
    )


# ----------------------------------------------------------------------
# Fig. 8: mesoscopic timeline
# ----------------------------------------------------------------------
@dataclass
class Fig8Point:
    """One dot of the Fig. 8 trip overlay."""

    timestamp: float
    truth: int
    predictions: Dict[str, int]


@dataclass
class MesoscopicStats:
    """Aggregate per-trip behaviour of one model over all episode
    trips — the quantitative form of Fig. 8's visual claim."""

    mean_accuracy: float
    mean_excess_flips: float  # prediction flips beyond truth flips
    n_trips: int


@dataclass
class Fig8Result:
    trip_id: int
    car_id: int
    anomaly_kind: str
    points: List[Fig8Point] = field(default_factory=list)
    #: Aggregated over every test trip containing an episode.
    aggregate: Dict[str, MesoscopicStats] = field(default_factory=dict)

    def accuracy(self, model: str) -> float:
        if not self.points:
            return 0.0
        hits = sum(1 for p in self.points if p.predictions[model] == p.truth)
        return hits / len(self.points)

    def flips(self, model: str) -> int:
        """Prediction sign changes along the trip — the paper's
        'fluctuation'.  A stable detector flips few times."""
        sequence = [p.predictions[model] for p in self.points]
        return sum(1 for a, b in zip(sequence, sequence[1:]) if a != b)

    def truth_flips(self) -> int:
        sequence = [p.truth for p in self.points]
        return sum(1 for a, b in zip(sequence, sequence[1:]) if a != b)

    def format_aggregate(self) -> str:
        lines = [
            f"{'model':<12}{'mean trip accuracy':>20}"
            f"{'mean excess flips':>19}{'trips':>7}"
        ]
        for name in MODEL_NAMES:
            stats = self.aggregate[name]
            lines.append(
                f"{name:<12}{stats.mean_accuracy:>20.3f}"
                f"{stats.mean_excess_flips:>19.2f}{stats.n_trips:>7}"
            )
        return "\n".join(lines)

    def format_timeline(self) -> str:
        header = (
            f"trip {self.trip_id} (car {self.car_id}, {self.anomaly_kind}): "
            f"1=normal 0=abnormal"
        )
        rows = [header, f"{'truth':<12}" + "".join(
            str(p.truth) for p in self.points
        )]
        for model in MODEL_NAMES:
            rows.append(
                f"{model:<12}" + "".join(
                    str(p.predictions[model]) for p in self.points
                )
            )
        return "\n".join(rows)


def _trip_link_records(
    dataset: SyntheticDataset,
) -> Dict[int, List[TelemetryRecord]]:
    by_trip: Dict[int, List[TelemetryRecord]] = {}
    for record in dataset.records:
        if record.road_type is RoadType.MOTORWAY_LINK:
            by_trip.setdefault(record.trip_id, []).append(record)
    return by_trip


def _trace_trip(
    models: TrainedModels, trip_records: List[TelemetryRecord]
) -> List[Fig8Point]:
    """Run all three models along one trip's link segment."""
    trip_records = sorted(trip_records, key=lambda r: r.timestamp)
    motorway_part = [
        r for r in trip_records if r.road_type is RoadType.MOTORWAY
    ]
    link_part = [
        r for r in trip_records if r.road_type is RoadType.MOTORWAY_LINK
    ]
    summaries = summaries_from_upstream(models.ad3_motorway, motorway_part)
    predictions = models.predict_link(link_part, summaries)
    return [
        Fig8Point(
            timestamp=record.timestamp,
            truth=record.label,
            predictions={
                name: int(pred[index]) for name, pred in predictions.items()
            },
        )
        for index, record in enumerate(link_part)
    ]


def fig8_mesoscopic(
    dataset: Optional[SyntheticDataset] = None,
    seed: int = 0,
    anomaly: AnomalyKind = AnomalyKind.SLOWING,
    min_link_points: int = 4,
) -> Fig8Result:
    """Reproduce Fig. 8 at the mesoscopic (driver-trip) level.

    Every held-out trip whose link segment contains an abnormal
    ``anomaly`` episode is traced through all three models; the
    aggregate (mean per-trip accuracy and excess prediction flips)
    quantifies the paper's visual claim that CAD3 is accurate and
    stable while AD3 fluctuates and the centralized model is
    unpredictable.  The returned timeline is the single trip where the
    models disagree most — the illustrative case, as in the paper's
    figure.
    """
    dataset = dataset or corridor_dataset()
    train, test = dataset.split_by_trip(0.8, seed=seed)
    models = train_models(train)

    test_trips: Dict[int, List[TelemetryRecord]] = {}
    for record in test:
        test_trips.setdefault(record.trip_id, []).append(record)

    def episode_trip(records: List[TelemetryRecord]) -> bool:
        link = [r for r in records if r.road_type is RoadType.MOTORWAY_LINK]
        abnormal = [
            r
            for r in link
            if r.anomaly_kind is anomaly and r.label == ABNORMAL
        ]
        return len(link) >= min_link_points and len(abnormal) >= 2

    episode_trip_ids = [
        tid for tid, records in test_trips.items() if episode_trip(records)
    ]
    if not episode_trip_ids:
        raise ValueError(
            f"no test trip contains an abnormal {anomaly.value} episode; "
            f"use a larger dataset"
        )

    traces: Dict[int, List[Fig8Point]] = {
        tid: _trace_trip(models, test_trips[tid]) for tid in episode_trip_ids
    }

    def trip_accuracy(points: List[Fig8Point], model: str) -> float:
        return sum(
            1 for p in points if p.predictions[model] == p.truth
        ) / len(points)

    def trip_excess_flips(points: List[Fig8Point], model: str) -> int:
        preds = [p.predictions[model] for p in points]
        truth = [p.truth for p in points]
        pred_flips = sum(1 for a, b in zip(preds, preds[1:]) if a != b)
        truth_flips = sum(1 for a, b in zip(truth, truth[1:]) if a != b)
        return max(0, pred_flips - truth_flips)

    aggregate = {}
    for name in MODEL_NAMES:
        accuracies = [trip_accuracy(points, name) for points in traces.values()]
        flips = [trip_excess_flips(points, name) for points in traces.values()]
        aggregate[name] = MesoscopicStats(
            mean_accuracy=float(np.mean(accuracies)),
            mean_excess_flips=float(np.mean(flips)),
            n_trips=len(traces),
        )

    # Illustrative timeline: the trip with the widest CAD3-vs-baseline
    # gap (the paper's figure shows exactly such a case).
    def disagreement(tid: int) -> float:
        points = traces[tid]
        return 2.0 * trip_accuracy(points, "cad3") - trip_accuracy(
            points, "ad3"
        ) - trip_accuracy(points, "centralized")

    best_trip = max(episode_trip_ids, key=disagreement)
    link_first = next(
        r
        for r in test_trips[best_trip]
        if r.road_type is RoadType.MOTORWAY_LINK
    )
    return Fig8Result(
        trip_id=best_trip,
        car_id=link_first.car_id,
        anomaly_kind=anomaly.value,
        points=traces[best_trip],
        aggregate=aggregate,
    )
