"""The observability experiment: an instrumented corridor run.

Runs the corridor with the :mod:`repro.obs` layer enabled, audits the
pipeline's conservation invariants (serial runs), and renders what the
instruments saw — as a markdown report for humans, a JSON document for
tooling, or a Prometheus text-exposition file for scrapers.

This is the ``repro obs`` CLI entry point; the same report object is
what the invariant-audited test harness asserts on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.system import TestbedScenario, default_training_dataset
from repro.obs.audit import InvariantReport, audit_scenario
from repro.obs.expo import render_prometheus
from repro.obs.metrics import RegistrySnapshot, format_key


@dataclass
class ObservabilityReport:
    """One instrumented corridor run, rendered."""

    snapshot: RegistrySnapshot
    #: Conservation-law audit; None for sharded runs (the audit needs
    #: the live scenario objects, which die with the worker processes).
    invariants: Optional[InvariantReport] = None
    params: Dict[str, object] = field(default_factory=dict)
    #: Per-shard live snapshot sizes, sharded runs only.
    n_shards: int = 1

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "params": self.params,
            "n_shards": self.n_shards,
            "metrics": self.snapshot.to_dict(),
            "invariants": (
                None if self.invariants is None else self.invariants.to_dict()
            ),
        }

    def to_prometheus(self) -> str:
        return render_prometheus(self.snapshot)

    # ------------------------------------------------------------------
    def format_markdown(self) -> str:
        snap = self.snapshot
        lines: List[str] = ["# Observability report", ""]
        if self.params:
            lines.append(
                "run: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
            )
            lines.append("")

        if snap.counters:
            lines += ["## Counters", "", "| metric | value |", "|---|---:|"]
            for key in sorted(snap.counters):
                lines.append(f"| `{format_key(key)}` | {snap.counters[key]} |")
            lines.append("")
        if snap.gauges:
            lines += [
                "## Gauges",
                "",
                "| metric | agg | value |",
                "|---|---|---:|",
            ]
            for key in sorted(snap.gauges):
                agg, value = snap.gauges[key]
                lines.append(f"| `{format_key(key)}` | {agg} | {value:g} |")
            lines.append("")
        if snap.histograms:
            lines += [
                "## Histograms",
                "",
                "| metric | count | mean | sum |",
                "|---|---:|---:|---:|",
            ]
            for key in sorted(snap.histograms):
                _edges, _counts, total, count = snap.histograms[key]
                mean = total / count if count else 0.0
                lines.append(
                    f"| `{format_key(key)}` | {count} | {mean:.3f} "
                    f"| {total:.3f} |"
                )
            lines.append("")

        if self.invariants is not None:
            status = "PASS" if self.invariants.ok else "FAIL"
            lines += [f"## Invariants — {status}", ""]
            for name, terms in self.invariants.terms.items():
                term_text = ", ".join(
                    f"{term}={value}" for term, value in terms.items()
                )
                lines.append(f"- `{name}`: {term_text}")
            for failure in self.invariants.failures:
                lines.append(f"- **VIOLATED**: {failure}")
            lines.append("")
        return "\n".join(lines)


def observability_corridor(
    n_vehicles: int = 16,
    duration_s: float = 5.0,
    motorways: int = 2,
    seed: int = 7,
    profile_name: Optional[str] = None,
    shards: int = 1,
    dataset=None,
) -> ObservabilityReport:
    """Run an instrumented corridor and collect everything observed.

    ``profile_name`` injects a fault profile (serial runs only, like
    the resilience experiment); ``shards > 1`` runs the multi-process
    engine and reports the merged cross-shard snapshot instead of the
    (serial-only) invariant audit.
    """
    dataset = dataset or default_training_dataset(seed=11, n_cars=60)
    builder = (
        TestbedScenario.builder()
        .vehicles(n_vehicles)
        .duration(duration_s)
        .seed(seed)
        .serde("struct")
        .handover(0.25)
        .observe()
    )
    params: Dict[str, object] = {
        "n_vehicles": n_vehicles,
        "duration_s": duration_s,
        "motorways": motorways,
        "seed": seed,
        "profile": profile_name or "none",
        "shards": shards,
    }

    if shards > 1:
        if profile_name:
            raise ValueError(
                "fault profiles are not supported under sharding; "
                "run with --shards 1"
            )
        from repro.parallel.engine import ShardedScenario

        spec = builder.shards(shards).build()
        engine = ShardedScenario(spec, motorways=motorways, dataset=dataset)
        result = engine.run()
        return ObservabilityReport(
            snapshot=result.obs, params=params, n_shards=engine.n_shards
        )

    if profile_name:
        from repro.faults.events import profile as fault_profile
        from repro.streaming.producer import RetryPolicy

        builder = builder.faults(
            fault_profile(profile_name, duration_s)
        ).retry(RetryPolicy())
    scenario = builder.corridor(motorways=motorways, dataset=dataset)
    result = scenario.run()
    return ObservabilityReport(
        snapshot=result.obs,
        invariants=audit_scenario(scenario),
        params=params,
    )


def write_report(
    report: ObservabilityReport,
    json_path: Optional[str] = None,
    prometheus_path: Optional[str] = None,
) -> None:
    """Optional file artefacts next to the printed report."""
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
    if prometheus_path:
        with open(prometheus_path, "w", encoding="utf-8") as handle:
            handle.write(report.to_prometheus())
