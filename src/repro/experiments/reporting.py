"""Terminal-friendly rendering for experiment results.

The paper's figures are line/bar charts; these helpers render the same
series as Unicode sparklines and horizontal bars so the examples and
CLI can show *shape* directly in a terminal, with no plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

#: Eighth-block ramp for sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> str:
    """Render a series as a one-line Unicode sparkline.

    NaNs render as spaces.  ``minimum``/``maximum`` pin the scale
    (defaulting to the finite data range).
    """
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    lo = minimum if minimum is not None else min(finite)
    hi = maximum if maximum is not None else max(finite)
    span = hi - lo
    chars = []
    for value in values:
        if math.isnan(value):
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_BLOCKS[0])
            continue
        fraction = (value - lo) / span
        index = min(len(_BLOCKS) - 1, max(0, int(fraction * len(_BLOCKS))))
        chars.append(_BLOCKS[index])
    return "".join(chars)


def horizontal_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labelled values as proportional horizontal bars."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels ({len(labels)}) and values ({len(values)}) disagree"
        )
    if not values:
        return ""
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = 0 if peak <= 0 else int(round(width * value / peak))
        bar = "█" * filled
        lines.append(
            f"{label:<{label_width}} │{bar:<{width}}│ "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def series_with_axis(
    values: Sequence[float], label: str = "", unit: str = ""
) -> str:
    """A sparkline annotated with its min/max scale."""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return f"{label} (no data)"
    return (
        f"{label} [{min(finite):g}..{max(finite):g}{unit}]  "
        f"{sparkline(values)}"
    )
