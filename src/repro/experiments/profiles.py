"""Fig. 2: speed profiles of motorway vs. motorway-link roads.

The paper's Fig. 2 plots hourly speed profiles for the two road types,
split by weekday/weekend, showing the spatio-temporal variation that
motivates context-aware detection.  This harness produces the same
four series, either from the profile library directly (the generating
distribution) or measured from a synthetic dataset (the empirical
version).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.schema import TelemetryRecord
from repro.dataset.speed_profiles import SpeedProfileLibrary
from repro.geo.roadnet import RoadType


@dataclass
class SpeedProfileSeries:
    """One Fig. 2 curve: hourly mean speeds for (road type, weekend)."""

    road_type: RoadType
    weekend: bool
    hourly_mean_kmh: List[float]

    @property
    def label(self) -> str:
        day = "weekend" if self.weekend else "weekday"
        return f"{self.road_type.value} ({day})"


@dataclass
class Fig2Result:
    series: List[SpeedProfileSeries] = field(default_factory=list)

    def get(self, road_type: RoadType, weekend: bool) -> SpeedProfileSeries:
        for entry in self.series:
            if entry.road_type is road_type and entry.weekend is weekend:
                return entry
        raise KeyError(f"no series for ({road_type}, weekend={weekend})")

    def format_table(self) -> str:
        header = "hour " + " ".join(
            f"{entry.label:>26}" for entry in self.series
        )
        lines = [header]
        for hour in range(24):
            row = f"{hour:>4} " + " ".join(
                f"{entry.hourly_mean_kmh[hour]:>26.1f}" for entry in self.series
            )
            lines.append(row)
        return "\n".join(lines)


def fig2_speed_profiles(
    records: Optional[Sequence[TelemetryRecord]] = None,
    road_types: Tuple[RoadType, ...] = (
        RoadType.MOTORWAY,
        RoadType.MOTORWAY_LINK,
    ),
) -> Fig2Result:
    """Build the Fig. 2 series.

    With ``records`` given, series are empirical hourly means measured
    from the data (hours with no observations carry NaN); otherwise
    they come from the generating profile library.
    """
    result = Fig2Result()
    if records is None:
        library = SpeedProfileLibrary()
        for road_type in road_types:
            for weekend in (False, True):
                result.series.append(
                    SpeedProfileSeries(
                        road_type=road_type,
                        weekend=weekend,
                        hourly_mean_kmh=library.hourly_means(road_type, weekend),
                    )
                )
        return result

    sums: Dict[Tuple[RoadType, bool, int], float] = {}
    counts: Dict[Tuple[RoadType, bool, int], int] = {}
    for record in records:
        key = (record.road_type, record.is_weekend, record.hour)
        sums[key] = sums.get(key, 0.0) + record.speed_kmh
        counts[key] = counts.get(key, 0) + 1
    for road_type in road_types:
        for weekend in (False, True):
            hourly = []
            for hour in range(24):
                key = (road_type, weekend, hour)
                if key in counts:
                    hourly.append(sums[key] / counts[key])
                else:
                    hourly.append(float("nan"))
            result.series.append(
                SpeedProfileSeries(
                    road_type=road_type, weekend=weekend, hourly_mean_kmh=hourly
                )
            )
    return result
