"""Table V / Table VI / Fig. 9: macroscopic deployment analyses."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.deploy.coverage import CoverageReport, assess_coverage
from repro.deploy.infrastructure import (
    TABLE_VI_SPECS,
    InfrastructureKind,
    InfrastructureSpacing,
    RoadsideInfrastructure,
    SpacingSpec,
    SyntheticInfrastructure,
)
from repro.deploy.placement import PlacementPlan, RsuPlacementPlanner
from repro.geo.network_builder import (
    TABLE_V_SPECS,
    CityNetworkBuilder,
    NetworkSpec,
)
from repro.geo.roadnet import RoadNetwork

#: The paper's full-city trunk inventory ("our dataset contains 51,129
#: individual road trunks for the city of Shenzhen").
SHENZHEN_ROAD_TRUNKS = 51_129


def build_city(
    seed: int = 3, count_scale: float = 1.0
) -> RoadNetwork:
    """The synthetic Shenzhen used by all deployment analyses."""
    return CityNetworkBuilder(seed=seed).build_city(
        NetworkSpec(count_scale=count_scale)
    )


def table5_placement(
    network: Optional[RoadNetwork] = None, seed: int = 3
) -> PlacementPlan:
    """Table V: RSUs required per road type."""
    network = network or build_city(seed=seed)
    density = {
        road_type: spec.traffic_density
        for road_type, spec in TABLE_V_SPECS.items()
    }
    return RsuPlacementPlanner().plan(network, density)


def city_scale_capacity(vehicles_per_rsu: int = 256) -> int:
    """The paper's 13-million-vehicle claim: one RSU per road trunk
    times the demonstrated per-RSU capacity."""
    return SHENZHEN_ROAD_TRUNKS * vehicles_per_rsu


def table6_infrastructure(
    network: Optional[RoadNetwork] = None,
    seed: int = 13,
    count_scale: float = 1.0,
) -> Tuple[List[InfrastructureSpacing], List[RoadsideInfrastructure]]:
    """Table VI: spacing statistics of synthetic street furniture.

    ``count_scale`` scales unit counts together with a scaled city.
    Returns (spacing rows, placed infrastructure) so Fig. 9 can reuse
    the placements.
    """
    network = network or build_city(seed=seed)
    generator = SyntheticInfrastructure(seed=seed)
    rows = []
    placements = []
    for kind in (InfrastructureKind.TRAFFIC_LIGHT, InfrastructureKind.LAMP_POLE):
        base = TABLE_VI_SPECS[kind]
        spec = SpacingSpec(
            count=max(1, int(base.count * count_scale)),
            mean_m=base.mean_m,
            std_m=base.std_m,
            max_m=base.max_m,
        )
        placement = generator.generate(network, kind, spec=spec)
        placements.append(placement)
        rows.append(placement.spacing_statistics())
    return rows, placements


def fig9_coverage(
    network: Optional[RoadNetwork] = None,
    seed: int = 13,
    dsrc_range_m: float = 300.0,
    infrastructure_scale: float = 4.0,
) -> CoverageReport:
    """Fig. 9: how much of the city existing infrastructure covers.

    The paper's OSM extract under-reports street furniture (520 mapped
    lamp poles for a 12-million city) yet concludes the real furniture
    "almost covers the entire city"; ``infrastructure_scale``
    compensates for that under-reporting when assessing coverage.
    """
    network = network or build_city(seed=seed)
    _, placements = table6_infrastructure(
        network=network, seed=seed, count_scale=infrastructure_scale
    )
    return assess_coverage(network, placements, dsrc_range_m=dsrc_range_m)
