"""Mesoscopic chains: carried-on summaries across multi-hop trips.

The paper's mesoscopic claim is not limited to one handover: "upon
vehicle handover, the former RSU passes a prediction summary to the
next, **the process which is carried on**, allows the system to gain
driver-awareness" (Sec. I).  The corridor experiments exercise one
hop; this harness exercises the chain on the connected grid city:

- trips are Dijkstra-routed across several segments;
- each segment's RSU detects with its road-type model;
- from the second segment on, the collaborative detector fuses the
  summary accumulated over *all* previous segments (merged exactly as
  :meth:`repro.core.rsu.RsuNode.build_summary` does online);
- the standalone baseline scores every segment with NB alone.

The measured quantity is per-hop detection quality as a function of
hop index: the chain's advantage should grow (or at least persist)
deeper into the trip, while AD3 stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.collaborative import CollaborativeDetector, summaries_from_upstream
from repro.core.detector import AD3Detector
from repro.core.features import PredictionSummary
from repro.dataset.generator import DatasetGenerator, GeneratorConfig, SyntheticDataset
from repro.dataset.preprocess import Preprocessor
from repro.dataset.schema import ABNORMAL, NORMAL, TelemetryRecord
from repro.geo.network_builder import CityNetworkBuilder
from repro.geo.roadnet import RoadType
from repro.ml.metrics import evaluate_binary


def grid_dataset(
    n_cars: int = 200,
    trips_per_car: int = 6,
    seed: int = 9,
    rows: int = 4,
    cols: int = 4,
) -> SyntheticDataset:
    """Routed multi-hop trips over the connected grid city."""
    network = CityNetworkBuilder(seed=seed).build_grid(rows=rows, cols=cols)
    generator = DatasetGenerator(
        network,
        GeneratorConfig(
            n_cars=n_cars,
            trips_per_car=trips_per_car,
            seed=seed,
            route_plan="routed",
            erroneous_rate=0.0,
        ),
    )
    dataset = generator.generate()
    dataset.records = Preprocessor().run(dataset.records)
    return dataset


@dataclass
class HopMetrics:
    """Detection quality at one hop depth, per model."""

    hop: int
    n_records: int
    f1: Dict[str, float] = field(default_factory=dict)
    fn_rate: Dict[str, float] = field(default_factory=dict)

    def format_row(self) -> str:
        return (
            f"hop {self.hop}: n={self.n_records:5d}  "
            f"AD3 f1={self.f1['ad3']:.3f} fn={self.fn_rate['ad3']:.3f}  "
            f"chain f1={self.f1['chain']:.3f} fn={self.fn_rate['chain']:.3f}"
        )


@dataclass
class ChainResult:
    hops: List[HopMetrics] = field(default_factory=list)

    def overall(self, model: str, metric: str) -> float:
        total = sum(h.n_records for h in self.hops)
        if total == 0:
            return 0.0
        return (
            sum(getattr(h, metric)[model] * h.n_records for h in self.hops)
            / total
        )

    def format_table(self) -> str:
        return "\n".join(hop.format_row() for hop in self.hops)


def _split_trip_by_segment(
    records: List[TelemetryRecord],
) -> List[List[TelemetryRecord]]:
    """Contiguous per-segment legs of one trip, in travel order."""
    legs: List[List[TelemetryRecord]] = []
    for record in sorted(records, key=lambda r: r.timestamp):
        if legs and legs[-1][0].road_id == record.road_id:
            legs[-1].append(record)
        else:
            legs.append([record])
    return legs


def mesoscopic_chain(
    dataset: Optional[SyntheticDataset] = None,
    max_hops: int = 4,
    seed: int = 0,
) -> ChainResult:
    """Evaluate chained vs. standalone detection by hop depth."""
    dataset = dataset or grid_dataset()
    train, test = dataset.split_by_trip(0.8, seed=seed)

    road_types = sorted(
        {r.road_type for r in dataset.records}, key=lambda rt: rt.value
    )
    standalone: Dict[RoadType, AD3Detector] = {}
    collaborative: Dict[RoadType, CollaborativeDetector] = {}
    for road_type in road_types:
        type_train = [r for r in train if r.road_type is road_type]
        nb = AD3Detector(road_type).fit(type_train)
        standalone[road_type] = nb
        # Train the fusion DT with summaries from the *other* segments
        # of the same trips (any upstream type feeds any downstream).
        other_train = [r for r in train if r.road_type is not road_type]
        upstream_type = other_train[0].road_type if other_train else road_type
        upstream_nb = (
            standalone.get(upstream_type)
            or AD3Detector(upstream_type).fit(
                [r for r in train if r.road_type is upstream_type]
            )
        )
        summaries = summaries_from_upstream(upstream_nb, other_train)
        collaborative[road_type] = CollaborativeDetector(
            road_type, nb=nb
        ).fit(type_train, summaries, refit_nb=False)

    # Per-hop accumulation over test trips.
    per_hop: Dict[int, Dict[str, List[int]]] = {}
    trips: Dict[int, List[TelemetryRecord]] = {}
    for record in test:
        trips.setdefault(record.trip_id, []).append(record)

    for trip_records in trips.values():
        legs = _split_trip_by_segment(trip_records)
        carried: Optional[PredictionSummary] = None
        for hop, leg in enumerate(legs[:max_hops]):
            road_type = leg[0].road_type
            nb = standalone[road_type]
            y_true = [r.label for r in leg]
            ad3_pred = nb.predict(leg)
            summaries = (
                {leg[0].car_id: carried} if carried is not None else {}
            )
            chain_pred = collaborative[road_type].predict(leg, summaries)
            bucket = per_hop.setdefault(
                hop,
                {"true": [], "ad3": [], "chain": []},
            )
            bucket["true"].extend(y_true)
            bucket["ad3"].extend(int(p) for p in ad3_pred)
            bucket["chain"].extend(int(p) for p in chain_pred)
            # Carry the summary on, exactly like RsuNode.build_summary.
            classes, probs = nb.detect(leg)
            local = PredictionSummary(
                car_id=leg[0].car_id,
                mean_normal_prob=float(np.mean(probs)),
                n_predictions=len(leg),
                last_class=int(classes[-1]),
                from_road_id=leg[0].road_id,
                timestamp=leg[-1].timestamp,
            )
            carried = (
                local
                if carried is None
                else PredictionSummary.merge([carried, local])
            )

    result = ChainResult()
    for hop in sorted(per_hop):
        bucket = per_hop[hop]
        if len(set(bucket["true"])) < 2:
            continue
        metrics = HopMetrics(hop=hop, n_records=len(bucket["true"]))
        for model in ("ad3", "chain"):
            report = evaluate_binary(bucket["true"], bucket[model])
            metrics.f1[model] = report.f1
            metrics.fn_rate[model] = report.fn_rate
        result.hops.append(metrics)
    return result
