"""Experiment harnesses: one module per paper table/figure.

Each harness builds its workload, runs the relevant subsystem, and
returns a structured result with a ``format_*`` method that prints the
same rows/series the paper reports.  The ``benchmarks/`` tree calls
these functions and asserts the paper's qualitative claims.

| Paper artefact | Harness |
|---|---|
| Fig. 2 speed profiles        | :func:`repro.experiments.profiles.fig2_speed_profiles` |
| Table III dataset statistics | :func:`repro.experiments.datasets.table3_statistics` |
| Fig. 6a latency scalability  | :func:`repro.experiments.latency.fig6a_latency_sweep` |
| Fig. 6b dissemination        | :func:`repro.experiments.multirsu.fig6bd_corridor` |
| Fig. 6c bandwidth            | :func:`repro.experiments.latency.fig6a_latency_sweep` (same sweep) |
| Fig. 6d per-RSU bandwidth    | :func:`repro.experiments.multirsu.fig6bd_corridor` |
| Fig. 7 model comparison      | :func:`repro.experiments.models.fig7_table4_comparison` |
| Fig. 8 mesoscopic timeline   | :func:`repro.experiments.models.fig8_mesoscopic` |
| Table IV accidents           | :func:`repro.experiments.models.fig7_table4_comparison` |
| Table V RSU placement        | :func:`repro.experiments.deployment.table5_placement` |
| Table VI infrastructure      | :func:`repro.experiments.deployment.table6_infrastructure` |
| Fig. 9 coverage              | :func:`repro.experiments.deployment.fig9_coverage` |
| Eq. 5-6 MAC analysis         | :func:`repro.experiments.mac.eq5_access_times` |
"""

from repro.experiments.ablations import (
    ablate_batch_interval,
    ablate_collaboration_link,
    ablate_detector_complexity,
    ablate_episode_persistence,
    ablate_history_weight,
    ablate_labeling_granularity,
    ablate_packet_loss,
    ablate_poll_interval,
    ablate_warning_threshold,
    format_ablation,
)
from repro.experiments.collab_budget import (
    BudgetPoint,
    CollabBudgetResult,
    collab_budget_sweep,
)
from repro.experiments.datasets import corridor_dataset, table3_statistics
from repro.experiments.drift import drift_adaptation
from repro.experiments.mesochain import grid_dataset, mesoscopic_chain
from repro.experiments.scale import (
    max_supported_vehicles,
    peak_hour_feasibility,
)
from repro.experiments.deployment import (
    fig9_coverage,
    table5_placement,
    table6_infrastructure,
)
from repro.experiments.latency import Fig6aRow, fig6a_latency_sweep
from repro.experiments.mac import Eq5Row, eq5_access_times
from repro.experiments.models import (
    ModelComparison,
    fig7_table4_comparison,
    fig8_mesoscopic,
)
from repro.experiments.multirsu import CorridorResult, fig6bd_corridor
from repro.experiments.profiles import fig2_speed_profiles

__all__ = [
    "BudgetPoint",
    "CollabBudgetResult",
    "CorridorResult",
    "Eq5Row",
    "Fig6aRow",
    "ModelComparison",
    "ablate_batch_interval",
    "ablate_collaboration_link",
    "ablate_detector_complexity",
    "ablate_episode_persistence",
    "ablate_history_weight",
    "ablate_labeling_granularity",
    "ablate_packet_loss",
    "ablate_poll_interval",
    "ablate_warning_threshold",
    "collab_budget_sweep",
    "corridor_dataset",
    "drift_adaptation",
    "format_ablation",
    "grid_dataset",
    "max_supported_vehicles",
    "mesoscopic_chain",
    "peak_hour_feasibility",
    "eq5_access_times",
    "fig2_speed_profiles",
    "fig6a_latency_sweep",
    "fig6bd_corridor",
    "fig7_table4_comparison",
    "fig8_mesoscopic",
    "fig9_coverage",
    "table3_statistics",
    "table5_placement",
    "table6_infrastructure",
]
