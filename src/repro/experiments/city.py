"""The ``repro city`` experiment: a trip-churn day over the Table V fleet.

Thin shell over :class:`~repro.city.engine.CityEngine` reached through
the :class:`~repro.core.workload.CityWorkload` construction path (the
same one :meth:`ScenarioBuilder.city` uses), so the CLI exercises the
unified Workload API rather than a private entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class CityReport:
    """What a city churn run measured, plus its conservation audit."""

    seed: int
    shards: int
    duration_s: float
    tick_s: float
    wave: str
    n_rsus: int
    n_ticks: int
    spawned: int
    retired: int
    final_active: int
    in_flight: int
    peak_concurrent: int
    mean_concurrent: float
    warnings_total: int
    migrations_applied: int
    rebalance_events: List[dict]
    digest_signature: str
    critical_path_cpu_s: float
    wall_s: float
    audit_violations: List[str] = field(default_factory=list)
    kernel: str = "fused"
    #: Per-phase tick-time breakdown (``--profile``): phase ->
    #: {count, total_ms, mean_ms}, folded from the repro.obs spans.
    profile: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.audit_violations

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "shards": self.shards,
            "duration_s": self.duration_s,
            "tick_s": self.tick_s,
            "wave": self.wave,
            "n_rsus": self.n_rsus,
            "n_ticks": self.n_ticks,
            "spawned": self.spawned,
            "retired": self.retired,
            "final_active": self.final_active,
            "in_flight": self.in_flight,
            "peak_concurrent": self.peak_concurrent,
            "mean_concurrent": self.mean_concurrent,
            "warnings_total": self.warnings_total,
            "migrations_applied": self.migrations_applied,
            "rebalance_events": list(self.rebalance_events),
            "digest_signature": self.digest_signature,
            "critical_path_cpu_s": self.critical_path_cpu_s,
            "wall_s": self.wall_s,
            "audit_violations": list(self.audit_violations),
            "ok": self.ok,
            "kernel": self.kernel,
            "profile": self.profile,
        }

    def format_markdown(self) -> str:
        lines = [
            "## City trip-churn run",
            "",
            f"- seed {self.seed}, {self.shards} shard(s), "
            f"{self.n_rsus} RSUs, {self.n_ticks} ticks of "
            f"{self.tick_s:.0f} s ({self.wave} demand wave)",
            f"- vehicles: {self.spawned:,} spawned, {self.retired:,} "
            f"retired, {self.final_active:,} active at end, "
            f"{self.in_flight:,} in flight",
            f"- concurrency: peak {self.peak_concurrent:,}, "
            f"mean {self.mean_concurrent:,.0f}",
            f"- warnings: {self.warnings_total:,}; cross-RSU moves "
            f"applied: {self.migrations_applied:,}",
            f"- rebalances: {len(self.rebalance_events)}",
            f"- digest: `{self.digest_signature[:16]}…`",
            f"- cpu (critical path): {self.critical_path_cpu_s:.2f} s; "
            f"wall: {self.wall_s:.2f} s",
        ]
        for event in self.rebalance_events:
            lines.append(
                f"  - tick {event['tick']}: {event['rsu']} shard "
                f"{event['from_shard']} -> {event['to_shard']}"
            )
        lines.append("")
        if self.profile:
            lines.append("### Tick-time breakdown")
            lines.append("")
            lines.append("| phase | ticks | total ms | mean ms |")
            lines.append("|---|---:|---:|---:|")
            ordered = sorted(
                self.profile.items(),
                key=lambda item: item[1]["total_ms"],
                reverse=True,
            )
            for phase, stats in ordered:
                lines.append(
                    f"| {phase} | {stats['count']:,} | "
                    f"{stats['total_ms']:,.1f} | {stats['mean_ms']:.3f} |"
                )
            lines.append("")
        if self.audit_violations:
            lines.append("### Audit: FAILED")
            lines.extend(f"- {v}" for v in self.audit_violations)
        else:
            lines.append("### Audit: all conservation laws hold")
        return "\n".join(lines)


def city_report(
    seed: int = 7,
    shards: int = 1,
    duration_s: float = 3600.0,
    count_scale: float = 0.05,
    rebalance_interval_ticks: int = 10,
    wave: str = "commute",
    observability: bool = False,
    initial_assignments: Optional[tuple] = None,
    kernel: str = "fused",
    profile: bool = False,
) -> CityReport:
    """Run one city churn day (or fraction of one) and report it."""
    from repro.city.model import COMMUTE_WAVE, FLAT_WAVE, CitySpec
    from repro.core.workload import CityWorkload

    waves = {"commute": COMMUTE_WAVE, "flat": FLAT_WAVE}
    if wave not in waves:
        raise ValueError(f"unknown demand wave {wave!r}; pick from {sorted(waves)}")
    spec = CitySpec(
        seed=seed,
        shards=shards,
        duration_s=duration_s,
        count_scale=count_scale,
        rebalance_interval_ticks=rebalance_interval_ticks if shards > 1 else 0,
        demand_wave=waves[wave],
        # Sharded profiling rides the obs span snapshots, so --profile
        # implies observability there.
        observability=observability or (profile and shards > 1),
        initial_assignments=initial_assignments,
        kernel=kernel,
        profile=profile,
    )
    result = CityWorkload(spec).build().run()
    return CityReport(
        seed=seed,
        shards=shards,
        duration_s=duration_s,
        tick_s=spec.tick_s,
        wave=wave,
        n_rsus=result.n_rsus,
        n_ticks=result.n_ticks,
        spawned=result.spawned,
        retired=result.retired,
        final_active=result.final_active,
        in_flight=result.in_flight,
        peak_concurrent=result.peak_concurrent,
        mean_concurrent=result.mean_concurrent,
        warnings_total=result.warnings_total,
        migrations_applied=result.migrations_applied,
        rebalance_events=list(result.rebalance_events),
        digest_signature=result.digest_signature(),
        critical_path_cpu_s=result.critical_path_cpu_s(),
        wall_s=result.wall_s,
        audit_violations=result.audit(),
        kernel=kernel,
        profile=result.profile,
    )
