"""Ablations of the design choices DESIGN.md calls out.

The paper fixes several knobs without sweeping them; these harnesses
quantify each choice so the reproduction can defend (or challenge) it:

- :func:`ablate_history_weight` — Eq. 1's 0.5/0.5 split between the
  forwarded history and the local NB probability.
- :func:`ablate_episode_persistence` — how much of CAD3's edge over
  AD3 comes from anomaly persistence across handovers (the property
  CO-DATA summaries exploit).
- :func:`ablate_batch_interval` — the 50 ms Spark micro-batch choice.
- :func:`ablate_poll_interval` — the 10 ms consumer poll choice.
- :func:`ablate_detector_complexity` — NB vs. logistic regression vs.
  random forest as the per-road detector (the paper's future work).
- :func:`ablate_collaboration_link` — wired vs. 5G vs. LTE for the
  inter-RSU CO-DATA hop (Sec. VII-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.collaborative import CollaborativeDetector, summaries_from_upstream
from repro.core.detector import AD3Detector
from repro.core.system import TestbedScenario, default_training_dataset
from repro.dataset.generator import DatasetGenerator, GeneratorConfig
from repro.dataset.preprocess import Preprocessor
from repro.experiments.datasets import corridor_dataset
from repro.geo.network_builder import CityNetworkBuilder
from repro.geo.roadnet import RoadType
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import evaluate_binary
from repro.net.cellular import LTE_PROFILE, NR_5G_PROFILE, CellularLink
from repro.net.link import WiredLink
from repro.simkernel.simulator import Simulator


@dataclass
class AblationPoint:
    """One (setting, metric) row of an ablation sweep."""

    setting: str
    value: float
    metric: str

    def format_row(self) -> str:
        return f"{self.setting:<28}{self.metric:>18} = {self.value:.4f}"


def format_ablation(points: Sequence[AblationPoint]) -> str:
    return "\n".join(point.format_row() for point in points)


# ----------------------------------------------------------------------
# Model-side ablations
# ----------------------------------------------------------------------
def _link_eval_setup(dataset):
    train, test = dataset.split_by_trip(0.8, seed=0)
    motorway_train = [r for r in train if r.road_type is RoadType.MOTORWAY]
    link_train = [r for r in train if r.road_type is RoadType.MOTORWAY_LINK]
    motorway_test = [r for r in test if r.road_type is RoadType.MOTORWAY]
    link_test = [r for r in test if r.road_type is RoadType.MOTORWAY_LINK]
    return motorway_train, link_train, motorway_test, link_test


def ablate_history_weight(
    dataset=None,
    weights: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> List[AblationPoint]:
    """F1 of CAD3 as Eq. 1's history weight sweeps 0 -> 1.

    Weight 0 degrades P_X to the local NB probability (history still
    influences nothing); the paper's 0.5 should beat it.
    """
    dataset = dataset or corridor_dataset()
    motorway_train, link_train, motorway_test, link_test = _link_eval_setup(
        dataset
    )
    upstream = AD3Detector(RoadType.MOTORWAY).fit(motorway_train)
    local_nb = AD3Detector(RoadType.MOTORWAY_LINK).fit(link_train)
    train_summaries = summaries_from_upstream(upstream, motorway_train)
    test_summaries = summaries_from_upstream(upstream, motorway_test)
    y_true = np.array([r.label for r in link_test])

    points = []
    for weight in weights:
        detector = CollaborativeDetector(
            RoadType.MOTORWAY_LINK, nb=local_nb, history_weight=weight
        ).fit(link_train, train_summaries, refit_nb=False)
        predictions = detector.predict(link_test, test_summaries)
        report = evaluate_binary(y_true, predictions)
        points.append(
            AblationPoint(f"history_weight={weight}", report.f1, "link F1")
        )
    return points


def ablate_episode_persistence(
    persistence_levels: Sequence[float] = (0.3, 0.6, 0.85, 0.95),
    n_cars: int = 250,
    seed: int = 1,
) -> List[AblationPoint]:
    """CAD3's F1 gain over AD3 as anomaly persistence varies.

    Regenerates the dataset with different episode-continuation
    probabilities and measures CAD3 - AD3 link F1.  Reproduction
    finding (see EXPERIMENTS.md): the gain is positive at *every*
    persistence level because the decision-tree second stage, not the
    Eq. 1 history term, carries most of the pointwise improvement on
    this synthetic mixture.
    """
    from repro.dataset.drivers import DriverModel, DriverProfile

    points = []
    for persistence in persistence_levels:
        network = CityNetworkBuilder(seed=seed).build_corridor()
        generator = DatasetGenerator(
            network,
            GeneratorConfig(
                n_cars=n_cars, trips_per_car=8, seed=seed, erroneous_rate=0.0
            ),
        )

        # Wrap driver construction to inject the persistence level.
        original_generate = generator._generate_trip

        def patched(
            object_id, car_id, model, route, day, hour, with_trajectories,
            _persistence=persistence,
        ):
            model.episode_continue_prob = _persistence
            return original_generate(
                object_id, car_id, model, route, day, hour, with_trajectories
            )

        generator._generate_trip = patched
        dataset = generator.generate()
        dataset.records = Preprocessor().run(dataset.records)

        motorway_train, link_train, motorway_test, link_test = (
            _link_eval_setup(dataset)
        )
        upstream = AD3Detector(RoadType.MOTORWAY).fit(motorway_train)
        ad3 = AD3Detector(RoadType.MOTORWAY_LINK).fit(link_train)
        cad3 = CollaborativeDetector(RoadType.MOTORWAY_LINK, nb=ad3).fit(
            link_train,
            summaries_from_upstream(upstream, motorway_train),
            refit_nb=False,
        )
        test_summaries = summaries_from_upstream(upstream, motorway_test)
        y_true = np.array([r.label for r in link_test])
        f1_ad3 = evaluate_binary(y_true, ad3.predict(link_test)).f1
        f1_cad3 = evaluate_binary(
            y_true, cad3.predict(link_test, test_summaries)
        ).f1
        points.append(
            AblationPoint(
                f"persistence={persistence}", f1_cad3 - f1_ad3, "CAD3-AD3 F1 gain"
            )
        )
    return points


def ablate_detector_complexity(
    dataset=None,
) -> List[AblationPoint]:
    """NB vs. logistic vs. random forest as the link RSU's detector.

    The paper's future work; quantifies how much headroom "complex
    algorithms" actually offer over the explainable NB on this task.
    """
    dataset = dataset or corridor_dataset()
    _, link_train, _, link_test = _link_eval_setup(dataset)
    y_true = np.array([r.label for r in link_test])

    models: Dict[str, Callable[[], object]] = {
        "naive_bayes": lambda: None,  # AD3Detector default
        "logistic": lambda: LogisticRegression(),
        "random_forest": lambda: RandomForestClassifier(
            n_trees=20, max_features=3, seed=0
        ),
    }
    points = []
    for name, factory in models.items():
        detector = AD3Detector(
            RoadType.MOTORWAY_LINK, model=factory()
        ).fit(link_train)
        report = evaluate_binary(y_true, detector.predict(link_test))
        points.append(AblationPoint(name, report.f1, "link F1"))
    return points


# ----------------------------------------------------------------------
# System-side ablations
# ----------------------------------------------------------------------
def ablate_batch_interval(
    intervals_s: Sequence[float] = (0.025, 0.050, 0.100, 0.200),
    n_vehicles: int = 64,
    duration_s: float = 4.0,
    dataset=None,
) -> List[AblationPoint]:
    """End-to-end latency vs. the micro-batch interval.

    The paper picks 50 ms "to keep the processing latency minimized";
    larger batches trade latency for throughput.
    """
    dataset = dataset or default_training_dataset(seed=11, n_cars=60)
    points = []
    for interval in intervals_s:
        result = (
            TestbedScenario.builder()
            .vehicles(n_vehicles)
            .duration(duration_s)
            .batch_interval(interval)
            .seed(7)
            .single_rsu(dataset=dataset)
            .run()
        )
        points.append(
            AblationPoint(
                f"batch_interval={interval * 1e3:.0f}ms",
                result.mean_e2e_ms(),
                "mean e2e ms",
            )
        )
    return points


def ablate_poll_interval(
    intervals_s: Sequence[float] = (0.005, 0.010, 0.050),
    n_vehicles: int = 64,
    duration_s: float = 4.0,
    dataset=None,
) -> List[AblationPoint]:
    """Dissemination latency vs. the consumer poll interval.

    The paper's consumers "pull every 10 ms to avoid consuming the
    bandwidth"; faster polls shave latency at higher poll cost.
    """
    dataset = dataset or default_training_dataset(seed=11, n_cars=60)
    points = []
    for interval in intervals_s:
        result = (
            TestbedScenario.builder()
            .vehicles(n_vehicles)
            .duration(duration_s)
            .poll_interval(interval)
            .seed(7)
            .single_rsu(dataset=dataset)
            .run()
        )
        points.append(
            AblationPoint(
                f"poll_interval={interval * 1e3:.0f}ms",
                result.mean_dissemination_ms(),
                "dissemination ms",
            )
        )
    return points


def ablate_labeling_granularity(
    n_cars: int = 250,
    seed: int = 1,
) -> Dict[str, List[AblationPoint]]:
    """Per-road-type vs. per-(type, hour) ground truth.

    The paper labels per road type; Fig. 2's hourly variation implies
    normality is really hour-dependent.  This ablation regenerates the
    labels at both granularities and retrains/evaluates all three
    models on each, returning ``{"type": [...], "type_hour": [...]}``
    of link-F1 points.
    """
    from repro.experiments.models import fig7_table4_comparison

    network = CityNetworkBuilder(seed=seed).build_corridor()
    generator = DatasetGenerator(
        network,
        GeneratorConfig(
            n_cars=n_cars, trips_per_car=8, seed=seed, erroneous_rate=0.0
        ),
    )
    raw = generator.generate()
    results: Dict[str, List[AblationPoint]] = {}
    for granularity in ("type", "type_hour"):
        dataset = DatasetGenerator(
            network,
            GeneratorConfig(
                n_cars=n_cars, trips_per_car=8, seed=seed, erroneous_rate=0.0
            ),
        ).generate()
        dataset.records = Preprocessor(granularity=granularity).run(
            dataset.records
        )
        comparison = fig7_table4_comparison(dataset)
        results[granularity] = [
            AblationPoint(
                f"{granularity}:{name}",
                comparison.reports[name].f1,
                "link F1",
            )
            for name in ("centralized", "ad3", "cad3")
        ]
    return results


def ablate_warning_threshold(
    thresholds: Sequence[int] = (1, 2, 3),
    n_vehicles: int = 32,
    duration_s: float = 6.0,
    dataset=None,
) -> List[AblationPoint]:
    """False-warning suppression vs. the consecutive-abnormal gate.

    Runs the testbed once per threshold and reports the *false-warning
    rate*: warnings issued whose triggering record was ground-truth
    normal, per issued warning.  Raising the gate suppresses flicker
    ("less disturbance to other drivers with false warnings") at the
    cost of delayed first warnings — the bench asserts both directions.
    """
    from repro.microbatch.context import ProcessingModel as _PM

    dataset = dataset or default_training_dataset(seed=11, n_cars=60)
    points = []
    for threshold in thresholds:
        scenario = (
            TestbedScenario.builder()
            .vehicles(n_vehicles)
            .duration(duration_s)
            .seed(7)
            .single_rsu(dataset=dataset)
        )
        rsu = scenario.rsus["rsu-motorway"]
        rsu.config.warning_threshold = threshold
        result = scenario.run()
        # Reconstruct which events fired warnings under this gate.
        streaks: Dict[int, int] = {}
        warnings = 0
        false_warnings = 0
        for event in sorted(rsu.events, key=lambda e: e.detected_at):
            if event.abnormal:
                streaks[event.car_id] = streaks.get(event.car_id, 0) + 1
            else:
                streaks[event.car_id] = 0
            if event.abnormal and streaks[event.car_id] >= threshold:
                warnings += 1
                if event.true_label == 1:
                    false_warnings += 1
        rate = false_warnings / warnings if warnings else 0.0
        points.append(
            AblationPoint(
                f"threshold={threshold}", rate, "false-warning rate"
            )
        )
        points.append(
            AblationPoint(
                f"threshold={threshold}", float(warnings), "warnings"
            )
        )
    return points


def ablate_packet_loss(
    loss_levels: Sequence[float] = (0.0, 0.05, 0.15, 0.30),
    n_vehicles: int = 32,
    duration_s: float = 4.0,
    dataset=None,
) -> List[AblationPoint]:
    """Detection coverage vs. DSRC broadcast loss.

    The paper's wired testbed is lossless; real DSRC broadcast frames
    are not acknowledged, so losses silently remove telemetry.  The
    metric is coverage: RSU detection events per telemetry record
    transmitted.  Latency of what *does* arrive is unaffected (losses
    do not queue), which the bench asserts separately.
    """
    dataset = dataset or default_training_dataset(seed=11, n_cars=60)
    points = []
    for loss in loss_levels:
        scenario = (
            TestbedScenario.builder()
            .vehicles(n_vehicles)
            .duration(duration_s)
            .loss(loss)
            .seed(7)
            .single_rsu(dataset=dataset)
        )
        result = scenario.run()
        sent = sum(
            stats.records_sent for stats in result.vehicle_stats.values()
        )
        received = result.rsu_metrics["rsu-motorway"].n_events
        points.append(
            AblationPoint(
                f"loss={loss:.0%}",
                received / sent if sent else 0.0,
                "delivery ratio",
            )
        )
    return points


def ablate_collaboration_link(
    n_summaries: int = 300,
    payload_bytes: int = 120,
    seed: int = 0,
) -> List[AblationPoint]:
    """CO-DATA delivery latency over wired vs. 5G vs. LTE links.

    Sec. VII-D: wired/DSRC for adjacent RSUs; 5G preferred over LTE
    where distance forces a cellular hop.
    """
    points = []

    def measure(name: str, link_factory) -> None:
        sim = Simulator()
        link = link_factory(sim)
        latencies = []

        def send_one() -> None:
            start = sim.now
            link.send(payload_bytes, lambda t, s=start: latencies.append(t - s))

        sim.every(0.01, send_one, until=0.01 * (n_summaries + 1))
        sim.run()
        points.append(
            AblationPoint(name, float(np.mean(latencies)) * 1e3, "delivery ms")
        )

    measure("wired", lambda sim: WiredLink(sim))
    measure(
        "5g",
        lambda sim: CellularLink(
            sim, NR_5G_PROFILE, rng=np.random.default_rng(seed)
        ),
    )
    measure(
        "lte",
        lambda sim: CellularLink(
            sim, LTE_PROFILE, rng=np.random.default_rng(seed)
        ),
    )
    return points
