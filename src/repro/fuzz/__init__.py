"""Property-based scenario fuzzing with differential oracles.

The fuzzer composes corridor scenarios the hand-written suites never
tried — topology x demand x channel preset x fault schedule x collab
knobs x dataplane x shard count — and judges each one with the
equivalence guarantees the repo already pins on fixed presets: the
four conservation-law audits, shards=N-vs-1, batched-vs-event, obs
on-vs-off, and collab-disabled-vs-none.  Failures shrink (hypothesis
plus a spec-level minimizer) to minimal JSON repro specs in
``tests/fuzz_corpus/``, which tier-1 CI replays forever.

Entry points: ``repro fuzz`` (CLI), :class:`~repro.fuzz.runner.FuzzRunner`
(library), :func:`~repro.fuzz.strategies.fuzz_specs` (hypothesis).
"""

from repro.fuzz.oracles import (
    OracleReport,
    run_city_oracles,
    run_oracles,
    scenario_signature,
    signature_digest,
)
from repro.fuzz.runner import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    FuzzRunner,
    minimize_spec,
    replay_corpus,
    replay_corpus_entry,
    write_corpus_entry,
)
from repro.fuzz.spec import (
    CHANNEL_PRESETS,
    FUZZ_DATASET_CARS,
    GOLDEN_DATASET_SEED,
    GOLDEN_SCENARIO_SEED,
    FuzzSpec,
)

__all__ = [
    "CHANNEL_PRESETS",
    "FUZZ_DATASET_CARS",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "FuzzRunner",
    "FuzzSpec",
    "GOLDEN_DATASET_SEED",
    "GOLDEN_SCENARIO_SEED",
    "OracleReport",
    "minimize_spec",
    "replay_corpus",
    "replay_corpus_entry",
    "run_city_oracles",
    "run_oracles",
    "scenario_signature",
    "signature_digest",
    "write_corpus_entry",
]
