"""The budgeted fuzz engine: generate → judge → shrink → persist.

:class:`FuzzRunner` drives :func:`~repro.fuzz.strategies.fuzz_specs`
through hypothesis in fixed-size *chunks* (each chunk is one
``@given`` invocation under an explicit ``@seed`` derived from the run
seed and chunk index), so a run is reproducible from its seed alone
and a wall-clock budget can stop between chunks without leaving
hypothesis mid-shrink.

When an oracle fails, the failing example is handed to the
**spec-level minimizer** (:func:`minimize_spec`): a greedy pass that
re-runs the oracle stack while dropping fault events, collapsing the
feature branch, and walking every knob toward the
:class:`~repro.fuzz.spec.FuzzSpec` defaults.  The runner deliberately
skips hypothesis's own shrink phase — each example is a full
multi-run simulation, so hypothesis's hundreds of shrink attempts
cost minutes where the minimizer converges in ~20 — while tests that
``@given(fuzz_specs())`` directly still get normal hypothesis
shrinking.

The minimal spec is written to the corpus directory as a JSON repro
entry (`expect: "fail"`); ``tests/test_fuzz/test_corpus_replay.py``
replays every committed entry deterministically, so a bug found once
is pinned forever.  Passing entries carry the canonical digest of
their obs-off serial run and assert bit-identical replay.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.fuzz.oracles import OracleReport, run_oracles, training_dataset
from repro.fuzz.spec import FuzzSpec

#: Examples per hypothesis invocation; small enough that a wall-clock
#: budget check between chunks is responsive.
CHUNK_EXAMPLES = 5


class OracleViolation(AssertionError):
    """Raised inside the hypothesis property when any oracle fails."""


@dataclass
class FuzzFailure:
    """One shrunk, persisted oracle failure."""

    spec: FuzzSpec
    failures: List[str]
    #: The example as hypothesis first found it, pre-minimization.
    found_spec: FuzzSpec
    corpus_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_payload(),
            "failures": list(self.failures),
            "found_spec": self.found_spec.to_payload(),
            "corpus_path": self.corpus_path,
        }


@dataclass
class FuzzReport:
    """The outcome of one budgeted fuzz run."""

    seed: int
    scenarios_run: int = 0
    chunks_run: int = 0
    elapsed_s: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)
    oracle_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "scenarios_run": self.scenarios_run,
            "chunks_run": self.chunks_run,
            "elapsed_s": round(self.elapsed_s, 3),
            "oracle_counts": dict(self.oracle_counts),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def format_markdown(self) -> str:
        lines = [
            "### repro fuzz",
            "",
            f"- seed: `{self.seed}`",
            f"- scenarios run: **{self.scenarios_run}** "
            f"({self.chunks_run} chunks, {self.elapsed_s:.1f} s)",
            "- oracles: "
            + ", ".join(
                f"{name} x{count}"
                for name, count in sorted(self.oracle_counts.items())
            ),
        ]
        if self.ok:
            lines.append("- result: **all oracles green**")
        else:
            lines.append(f"- result: **{len(self.failures)} failure(s)**")
            for failure in self.failures:
                lines.append("")
                lines.append("```json")
                lines.append(failure.spec.to_json())
                lines.append("```")
                for message in failure.failures:
                    lines.append(f"  - {message}")
                if failure.corpus_path:
                    lines.append(f"  - repro written to `{failure.corpus_path}`")
        return "\n".join(lines)


@dataclass(frozen=True)
class FuzzConfig:
    """A fuzz run's budget and generation bounds."""

    seed: int = 0
    #: Generated-scenario budget (scenarios actually judged; shrink
    #: re-executions do not count).
    examples: int = 50
    #: Wall-clock budget; checked between chunks, ``None`` = unbounded.
    time_budget_s: Optional[float] = None
    max_vehicles: int = 8
    max_motorways: int = 3
    max_shards: int = 3
    #: Stop after this many distinct failures (each is shrunk and
    #: persisted); keeps a badly broken tree from burning the budget.
    max_failures: int = 3
    corpus_dir: Optional[str] = None

    @classmethod
    def smoke(cls, seed: int = 0) -> "FuzzConfig":
        """The CI smoke profile: >= 25 scenarios, tight sizes."""
        return cls(
            seed=seed,
            examples=30,
            time_budget_s=600.0,
            max_vehicles=6,
            max_motorways=2,
            max_shards=2,
            max_failures=1,
        )


class FuzzRunner:
    """Drive the strategy/oracle loop under a budget."""

    def __init__(self, config: FuzzConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def run(self) -> FuzzReport:
        report = FuzzReport(seed=self.config.seed)
        started = time.monotonic()
        chunk_index = 0
        while report.scenarios_run < self.config.examples:
            if (
                self.config.time_budget_s is not None
                and time.monotonic() - started > self.config.time_budget_s
            ):
                break
            if len(report.failures) >= self.config.max_failures:
                break
            remaining = self.config.examples - report.scenarios_run
            found = self._run_chunk(
                chunk_index, min(CHUNK_EXAMPLES, remaining), report
            )
            if found is not None:
                found_spec, oracle_report = found
                minimal, failures = minimize_spec(found_spec)
                failure = FuzzFailure(
                    spec=minimal,
                    failures=failures or oracle_report.failures,
                    found_spec=found_spec,
                )
                if self.config.corpus_dir is not None:
                    failure.corpus_path = str(
                        write_corpus_entry(
                            Path(self.config.corpus_dir),
                            minimal,
                            expect="fail",
                            failures=failure.failures,
                            seed=self.config.seed,
                        )
                    )
                report.failures.append(failure)
            report.chunks_run += 1
            chunk_index += 1
        report.elapsed_s = time.monotonic() - started
        return report

    # ------------------------------------------------------------------
    def sample_specs(self, n: int) -> List[FuzzSpec]:
        """The first ``n`` specs this config's seed generates, without
        running any oracle — the determinism probe (same seed must give
        the same spec sequence)."""
        specs: List[FuzzSpec] = []
        chunk_index = 0
        while len(specs) < n:
            remaining = n - len(specs)
            self._drive_chunk(
                chunk_index,
                min(CHUNK_EXAMPLES, remaining),
                lambda spec: specs.append(spec),
            )
            chunk_index += 1
        return specs[:n]

    # ------------------------------------------------------------------
    def _chunk_seed(self, chunk_index: int) -> int:
        # Deterministic per-chunk derivation; spacing keeps chunk
        # streams disjoint for any reasonable run length.
        return self.config.seed * 1_000_003 + chunk_index

    def _run_chunk(self, chunk_index: int, examples: int, report: FuzzReport):
        """One hypothesis invocation; returns the shrunk failing
        (spec, oracle report) or ``None``."""
        holder: Dict[str, Any] = {}

        def judge(spec: FuzzSpec) -> None:
            oracle_report = run_oracles(spec)
            if "failed" not in holder:
                # Count only the exploration phase, not shrink re-runs.
                report.scenarios_run += 1
                for name in oracle_report.oracles_run:
                    report.oracle_counts[name] = (
                        report.oracle_counts.get(name, 0) + 1
                    )
            if not oracle_report.ok:
                holder["failed"] = True
                # Overwritten on every failing shrink attempt;
                # hypothesis re-runs the minimal example last.
                holder["spec"] = spec
                holder["report"] = oracle_report
                raise OracleViolation("; ".join(oracle_report.failures))

        try:
            self._drive_chunk(chunk_index, examples, judge)
        except OracleViolation:
            return holder["spec"], holder["report"]
        return None

    def _drive_chunk(self, chunk_index: int, examples: int, body) -> None:
        from hypothesis import HealthCheck, Phase, given
        from hypothesis import seed as hypothesis_seed
        from hypothesis import settings

        from repro.fuzz.strategies import fuzz_specs

        strategy = fuzz_specs(
            max_vehicles=self.config.max_vehicles,
            max_motorways=self.config.max_motorways,
            max_shards=self.config.max_shards,
        )

        @hypothesis_seed(self._chunk_seed(chunk_index))
        @settings(
            max_examples=examples,
            deadline=None,
            database=None,
            derandomize=False,
            print_blob=False,
            suppress_health_check=list(HealthCheck),
            # No hypothesis shrink phase here: every example is a full
            # multi-run simulation, so hypothesis's hundreds of shrink
            # attempts cost minutes.  The strategy space is ordered
            # simplest-first and the greedy spec-level minimizer
            # (~20 oracle runs) produces the minimal repro instead.
            # Strategy-level @given tests still shrink normally.
            phases=(Phase.explicit, Phase.reuse, Phase.generate),
        )
        @given(strategy)
        def property_(spec: FuzzSpec) -> None:
            body(spec)

        property_()


# ----------------------------------------------------------------------
# Spec-level minimizer
# ----------------------------------------------------------------------
def _still_fails(spec: FuzzSpec) -> Optional[List[str]]:
    try:
        candidate_report = run_oracles(spec)
    except Exception as exc:  # pragma: no cover - defensive
        return [f"oracle error: {exc!r}"]
    return None if candidate_report.ok else candidate_report.failures


def _simplifications(spec: FuzzSpec):
    """Candidate one-step simplifications, most structural first."""
    if spec.city is not None:
        # City specs shrink along their own axes; the corridor knobs
        # are already at their defaults and inert.
        city = dict(spec.city)
        if city.get("shards", 1) > 1:
            collapsed = {
                key: value
                for key, value in city.items()
                if key not in ("shards", "rebalance_interval_ticks")
            }
            yield spec.replace(city=collapsed)
        if city.get("rebalance_interval_ticks", 0):
            yield spec.replace(
                city={
                    key: value
                    for key, value in city.items()
                    if key != "rebalance_interval_ticks"
                }
            )
        if city.get("duration_s", 600.0) > 600.0:
            yield spec.replace(city={**city, "duration_s": 600.0})
        if city.get("count_scale", 0.002) > 0.002:
            yield spec.replace(city={**city, "count_scale": 0.002})
        return
    for index in range(len(spec.faults)):
        events = spec.faults[:index] + spec.faults[index + 1 :]
        yield spec.replace(faults=events)
    if spec.channel != "stable" and not spec.faults:
        # An unstable channel implies a burst fault; only drop it once
        # the scheduled events are gone so has_faults stays consistent.
        yield spec.replace(channel="stable")
    elif spec.channel == "lossy":
        yield spec.replace(channel="stable")
    if spec.collab is not None:
        yield spec.replace(collab=None)
    if spec.shards > 1:
        yield spec.replace(shards=1)
    if spec.dataplane != "event":
        yield spec.replace(dataplane="event")
    if spec.motorways > 1:
        yield spec.replace(motorways=spec.motorways - 1)
    if spec.vehicles > 2:
        yield spec.replace(vehicles=max(2, spec.vehicles // 2))
    if spec.vehicles == 2:
        yield spec.replace(vehicles=1)
    if spec.duration_s > 1.0:
        yield spec.replace(duration_s=1.0)
    if spec.handover_fraction > 0.0:
        yield spec.replace(handover_fraction=0.0)
    if spec.serde_profile != "json":
        yield spec.replace(serde_profile="json")
    if not spec.columnar:
        yield spec.replace(columnar=True)


def minimize_spec(
    spec: FuzzSpec, max_attempts: int = 80
) -> tuple:
    """Greedy spec-level shrink: keep applying the first simplification
    that still fails the oracle stack, until none does (or the attempt
    budget runs out).  Returns ``(minimal_spec, failures)``."""
    failures = _still_fails(spec)
    if failures is None:
        # The caller saw a failure but it does not reproduce stand-alone
        # (e.g. planted flag raced off); return the spec untouched.
        return spec, []
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in _simplifications(spec):
            attempts += 1
            candidate_failures = _still_fails(candidate)
            if candidate_failures is not None:
                spec = candidate
                failures = candidate_failures
                progressed = True
                break
            if attempts >= max_attempts:
                break
    return spec, failures


# ----------------------------------------------------------------------
# Corpus I/O
# ----------------------------------------------------------------------
def write_corpus_entry(
    corpus_dir: Path,
    spec: FuzzSpec,
    expect: str = "pass",
    digest: Optional[str] = None,
    failures: Sequence[str] = (),
    seed: Optional[int] = None,
) -> Path:
    """Persist one replayable corpus entry; returns its path."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, Any] = {"expect": expect, "spec": spec.to_payload()}
    if digest is not None:
        payload["digest"] = digest
    if failures:
        payload["failures"] = list(failures)
    if seed is not None:
        payload["found_by_seed"] = seed
    canonical = json.dumps(payload["spec"], sort_keys=True)
    import hashlib

    stem = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    path = corpus_dir / f"repro-{stem}.json"
    path.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    return path


def replay_corpus_entry(path: Path, update_digest: bool = False) -> dict:
    """Replay one corpus entry; returns a result dict.

    ``expect: "pass"`` entries must come back green, and — when they
    pin a ``digest`` — bit-identical.  ``expect: "fail"`` entries must
    still fail (a fixed bug flips the entry to ``pass`` with a fresh
    digest, which ``update_digest`` writes for you).
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    spec = FuzzSpec.from_payload(payload["spec"])
    oracle_report: OracleReport = run_oracles(spec)
    expect = payload.get("expect", "pass")
    problems: List[str] = []
    if expect == "pass":
        problems.extend(oracle_report.failures)
        pinned = payload.get("digest")
        if pinned is not None and pinned != oracle_report.digest:
            problems.append(
                f"digest drift: corpus pins {pinned[:12]}…, "
                f"replay produced {oracle_report.digest[:12]}…"
            )
    elif expect == "fail":
        if oracle_report.ok:
            problems.append(
                "entry expected to fail but all oracles passed — the bug "
                "is fixed; flip expect to 'pass' and pin the digest "
                "(repro fuzz --replay <file> --update-digests)"
            )
    else:
        problems.append(f"unknown expect value {expect!r}")
    if update_digest and oracle_report.ok:
        payload["expect"] = "pass"
        payload["digest"] = oracle_report.digest
        payload.pop("failures", None)
        path.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    return {
        "path": str(path),
        "expect": expect,
        "ok": not problems,
        "problems": problems,
        "digest": oracle_report.digest,
        "oracles_run": oracle_report.oracles_run,
    }


def replay_corpus(corpus_dir: Path, update_digest: bool = False) -> List[dict]:
    """Replay every ``*.json`` entry in a corpus directory (sorted)."""
    entries = sorted(Path(corpus_dir).glob("*.json"))
    return [
        replay_corpus_entry(entry, update_digest=update_digest)
        for entry in entries
    ]


def fuzz_dataset_warmup(spec: Optional[FuzzSpec] = None) -> None:
    """Pre-build the shared training dataset (keeps timing out of the
    first chunk's wall-clock accounting)."""
    training_dataset(spec if spec is not None else FuzzSpec())
