"""Hypothesis strategies over the fuzzer's scenario space.

One composite strategy, :func:`fuzz_specs`, draws a complete
:class:`~repro.fuzz.spec.FuzzSpec`: base corridor knobs first, then a
*feature branch* that decides which mutually-exclusive subsystem the
scenario exercises (fault schedule, batched dataplane, sharding, or a
collaboration plane) so every draw satisfies the scenario layer's
cross-field rules by construction.  All choice sets are small and
ordered simplest-first, which is what makes hypothesis shrinking
effective: a failing example collapses toward the one-motorway,
two-vehicle, fault-free default corridor.

Hypothesis is a test-time dependency of the repo, not a hard runtime
requirement of :mod:`repro`; the import is deferred so merely importing
:mod:`repro.fuzz` works without it.
"""

from __future__ import annotations

from typing import Optional

from repro.fuzz.spec import FuzzSpec


def _hypothesis():
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            "the scenario fuzzer needs the 'hypothesis' package "
            "(available in the test environment: pip install hypothesis)"
        ) from exc
    return st


#: Feature branches, simplest first (the shrink target is "plain").
BRANCHES = ("plain", "faults", "batched", "sharded", "collab", "city")


def fuzz_specs(
    max_vehicles: int = 8,
    max_motorways: int = 3,
    max_shards: int = 3,
    branches: Optional[tuple] = None,
):
    """Strategy producing valid :class:`FuzzSpec` values."""
    st = _hypothesis()
    branches = branches if branches is not None else BRANCHES

    @st.composite
    def _specs(draw):
        branch = draw(st.sampled_from(branches))
        motorways = draw(st.integers(min_value=1, max_value=max_motorways))
        vehicles = draw(st.integers(min_value=2, max_value=max_vehicles))
        duration_s = draw(st.sampled_from([1.0, 1.5, 2.0]))
        handover = draw(st.sampled_from([0.0, 0.25, 0.5]))
        serde = draw(st.sampled_from(["json", "struct"]))
        columnar = draw(st.booleans())
        seed = draw(st.integers(min_value=0, max_value=2**16))
        channel = draw(st.sampled_from(["stable", "lossy"]))

        kwargs = dict(
            seed=seed,
            motorways=motorways,
            vehicles=vehicles,
            duration_s=duration_s,
            handover_fraction=handover,
            channel=channel,
            serde_profile=serde,
            columnar=columnar,
        )
        if branch == "faults":
            # The unstable channel preset is only reachable here: its
            # interference burst rides the fault machinery.
            kwargs["channel"] = draw(
                st.sampled_from(["stable", "lossy", "unstable"])
            )
            kwargs["faults"] = tuple(
                draw(
                    st.lists(
                        fault_events(motorways, duration_s),
                        min_size=0 if kwargs["channel"] == "unstable" else 1,
                        max_size=2,
                    )
                )
            )
        elif branch == "batched":
            kwargs["dataplane"] = "batched"
        elif branch == "sharded":
            kwargs["shards"] = draw(
                st.integers(min_value=2, max_value=max_shards)
            )
        elif branch == "collab":
            kwargs["collab"] = draw(collab_overrides())
        elif branch == "city":
            # A city point replaces the corridor wholesale; every
            # corridor axis stays at its default so the repro
            # serializes to just the seed and the city knobs.
            kwargs = dict(seed=seed, city=draw(city_overrides(max_shards)))
        return FuzzSpec(**kwargs)

    return _specs()


def fault_events(motorways: int, duration_s: float):
    """Strategy for one fault-schedule entry valid on this corridor."""
    st = _hypothesis()
    motorway_names = [f"rsu-mw-{index + 1}" for index in range(motorways)]
    at_s = st.sampled_from(
        [round(duration_s * frac, 3) for frac in (0.3, 0.4, 0.6)]
    )

    def _crash(rsu, at, restart_frac, ack):
        return {
            "kind": "broker_crash",
            "rsu": rsu,
            "at_s": at,
            "restart_after_s": round(duration_s * restart_frac, 3),
            "ack_loss_s": ack,
        }

    crash = st.builds(
        _crash,
        st.sampled_from(motorway_names),
        at_s,
        st.sampled_from([0.1, 0.2]),
        st.sampled_from([0.0, 0.1]),
    )
    burst = st.builds(
        lambda rsu, at, frac, loss: {
            "kind": "burst_loss",
            "rsu": rsu,
            "at_s": at,
            "duration_s": round(duration_s * frac, 3),
            "loss_prob": loss,
        },
        st.sampled_from(motorway_names),
        at_s,
        st.sampled_from([0.15, 0.3]),
        st.sampled_from([0.2, 0.5]),
    )
    partition = st.builds(
        lambda src, at, frac: {
            "kind": "link_partition",
            "src": src,
            "dst": "rsu-mw-link",
            "at_s": at,
            "duration_s": round(duration_s * frac, 3),
        },
        st.sampled_from(motorway_names),
        at_s,
        st.sampled_from([0.2, 0.4]),
    )
    choices = [crash, burst, partition]
    if motorways >= 2:
        kill = st.builds(
            lambda rsu, at: {
                "kind": "rsu_kill",
                "rsu": rsu,
                "at_s": at,
                "failover_to": (
                    motorway_names[1]
                    if rsu == motorway_names[0]
                    else motorway_names[0]
                ),
            },
            st.sampled_from(motorway_names),
            at_s,
        )
        choices.append(kill)
    return st.one_of(choices)


def city_overrides(max_shards: int = 2):
    """Strategy for the city-workload knob dict: tiny scales (tens of
    RSUs, minutes of simulated time) so the three-run oracle stack —
    fused, reference, and optionally sharded — replays in seconds.
    Values are ordered cheapest-first for shrinking."""
    st = _hypothesis()
    return st.fixed_dictionaries(
        {
            "count_scale": st.sampled_from([0.002, 0.005, 0.01]),
            "duration_s": st.sampled_from([600.0, 1800.0, 3600.0]),
        },
        optional={
            "shards": st.integers(min_value=2, max_value=min(max_shards, 4)),
            "rebalance_interval_ticks": st.sampled_from([10, 30]),
        },
    )


def collab_overrides():
    """Strategy for CollabConfig override dicts — disabled configs (the
    identity oracle's food) and enabled gating/delta/priority mixes."""
    st = _hypothesis()
    disabled = st.just({})
    enabled = st.fixed_dictionaries(
        {
            "mode": st.sampled_from(["handover", "refresh"]),
            "gate_threshold": st.sampled_from([0.0, 0.2, 0.6]),
            "delta_encoding": st.booleans(),
            "priority": st.booleans(),
        },
        optional={
            "refresh_interval_s": st.sampled_from([0.25, 0.5]),
        },
    )
    return st.one_of(disabled, enabled)
