"""The differential-oracle stack a generated scenario runs under.

The fuzzer's judgement problem — "was this randomly composed scenario
handled *correctly*?" — is answered without a hand-written expected
output, by the same equivalence guarantees the golden suites pin on
fixed presets:

1. **Conservation audit** — the four integer conservation laws of
   :mod:`repro.obs.audit` on an observability-enabled serial run.
2. **Observer effect** — the obs-on run must be bit-identical to an
   obs-off run of the same spec.
3. **Shard equivalence** — a ``shards=N`` spec must reproduce the
   ``shards=1`` warnings, vehicle stats, and latency samples exactly.
4. **Dataplane equivalence** — a ``batched`` spec must be bit-identical
   to the per-event dataplane.
5. **Collab-disabled identity** — a present-but-disabled
   :class:`~repro.core.collab.CollabConfig` must change nothing against
   no config at all.

Oracles 3-5 only apply when the spec exercises the feature; the report
lists which ran.  Every run's *canonical digest* (a SHA-256 over the
obs-off serial signature) is recorded so corpus replays can assert
bit-identical behaviour across commits and CI runs.

``REPRO_FUZZ_PLANTED=1`` (or :func:`set_planted_bug`) re-introduces a
known-fixed off-by-one — the pre-PR-3 double-count of a migrated car's
warning at the busiest RSU — as a *planted regression*: the
demonstration test proves the fuzzer finds it and shrinks it to a
minimal committed repro.  It must never be set outside that test.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.spec import FuzzSpec

# ----------------------------------------------------------------------
# Planted regression (demonstration only)
# ----------------------------------------------------------------------
_PLANTED = False


def set_planted_bug(enabled: bool) -> None:
    """Enable the demonstration regression (see module docs)."""
    global _PLANTED
    _PLANTED = enabled


def planted_bug_active() -> bool:
    return _PLANTED or os.environ.get("REPRO_FUZZ_PLANTED") == "1"


# ----------------------------------------------------------------------
# Signatures and digests
# ----------------------------------------------------------------------
def scenario_signature(scenario, result) -> Dict[str, Any]:
    """Everything a run's bit-identity is judged by, as plain JSON-able
    structure: per-RSU warning logs and event streams, per-vehicle
    stats with full latency sample lists."""
    return {
        "warnings": {
            name: [list(entry) for entry in rsu.warning_log()]
            for name, rsu in scenario.rsus.items()
        },
        "events": {
            name: [
                [
                    event.car_id,
                    event.generated_at,
                    event.arrived_at,
                    event.detected_at,
                    bool(event.abnormal),
                ]
                for event in rsu.events
            ]
            for name, rsu in scenario.rsus.items()
        },
        "vehicles": {
            str(car): [
                stats.records_sent,
                stats.bytes_sent,
                stats.warnings_received,
                stats.records_lost,
                list(stats.e2e_latencies_s),
                list(stats.dissemination_latencies_s),
            ]
            for car, stats in result.vehicle_stats.items()
        },
    }


def sharded_signature(scenario, result) -> Dict[str, Any]:
    """The subset of the signature a sharded engine exposes (warning
    logs come off the engine; per-RSU event streams stay in-worker)."""
    return {
        "warnings": {
            name: [list(entry) for entry in log]
            for name, log in scenario.warning_logs.items()
        },
        "vehicles": {
            str(car): [
                stats.records_sent,
                stats.bytes_sent,
                stats.warnings_received,
                stats.records_lost,
                list(stats.e2e_latencies_s),
                list(stats.dissemination_latencies_s),
            ]
            for car, stats in result.vehicle_stats.items()
        },
    }


def signature_digest(signature: Dict[str, Any]) -> str:
    """A stable SHA-256 over the canonical JSON of a signature."""
    canonical = json.dumps(signature, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _diff_hint(name: str, left: Dict[str, Any], right: Dict[str, Any]) -> str:
    """A one-line pointer at the first differing key, to keep oracle
    failures readable without dumping whole signatures."""
    for key in sorted(set(left) | set(right)):
        if left.get(key) != right.get(key):
            return f"{name}: first divergence under {key!r}"
    return f"{name}: signatures differ"


# ----------------------------------------------------------------------
# The oracle report
# ----------------------------------------------------------------------
@dataclass
class OracleReport:
    """What ran and what failed for one generated spec."""

    spec: FuzzSpec
    #: SHA-256 of the obs-off serial signature — the canonical digest a
    #: corpus entry pins.
    digest: str = ""
    oracles_run: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "digest": self.digest,
            "oracles_run": list(self.oracles_run),
            "failures": list(self.failures),
            "spec": self.spec.to_payload(),
        }


# ----------------------------------------------------------------------
# Dataset cache
# ----------------------------------------------------------------------
_DATASETS: Dict[Tuple[int, int], Any] = {}


def training_dataset(spec: FuzzSpec):
    """The (cached) labelled training dataset a spec's detectors fit on."""
    key = (spec.dataset_seed, spec.dataset_cars)
    if key not in _DATASETS:
        from repro.core.system import default_training_dataset

        _DATASETS[key] = default_training_dataset(
            seed=spec.dataset_seed, n_cars=spec.dataset_cars
        )
    return _DATASETS[key]


# ----------------------------------------------------------------------
# The stack
# ----------------------------------------------------------------------
def run_oracles(spec: FuzzSpec, dataset=None) -> OracleReport:
    """Execute ``spec`` under every applicable oracle.

    Run plan (two serial runs always, plus one comparator per exercised
    feature):

    - ``A``: serial (``shards=1``), observability **on** → conservation
      audit (the per-car warning attribution needs obs).
    - ``B``: serial, observability **off** → the canonical digest, and
      the observer-effect identity against ``A``.
    - ``C`` (``shards > 1``): the sharded engine vs ``B``.
    - ``D`` (``dataplane == "batched"``): the event dataplane vs ``B``.
    - ``E`` (collab present but disabled): no collab config vs ``B``.
    """
    if spec.city is not None:
        return run_city_oracles(spec)
    report = OracleReport(spec=spec)
    dataset = dataset if dataset is not None else training_dataset(spec)

    # --- A: conservation audit under observability ---------------------
    report.oracles_run.append("conservation_audit")
    scenario_a = spec.build(dataset, shards=1, observability=True)
    result_a = scenario_a.run()
    if planted_bug_active():
        _plant_regression(scenario_a)
    from repro.obs.audit import audit_scenario

    audit = audit_scenario(scenario_a)
    if not audit.ok:
        report.failures.extend(
            f"conservation_audit: {failure}" for failure in audit.failures
        )
    signature_a = scenario_signature(scenario_a, result_a)

    # --- B: observer-effect identity + canonical digest ----------------
    report.oracles_run.append("observer_effect")
    scenario_b = spec.build(dataset, shards=1, observability=False)
    result_b = scenario_b.run()
    signature_b = scenario_signature(scenario_b, result_b)
    report.digest = signature_digest(signature_b)
    if signature_a != signature_b:
        report.failures.append(
            _diff_hint("observer_effect", signature_a, signature_b)
        )

    # --- C: shards=N vs 1 ---------------------------------------------
    if spec.shards > 1:
        report.oracles_run.append("shard_equivalence")
        sharded = spec.build(dataset, observability=False)
        result_c = sharded.run()
        signature_c = sharded_signature(sharded, result_c)
        serial_view = {
            "warnings": signature_b["warnings"],
            "vehicles": signature_b["vehicles"],
        }
        if signature_c != serial_view:
            report.failures.append(
                _diff_hint(
                    f"shard_equivalence[shards={spec.shards}]",
                    signature_c,
                    serial_view,
                )
            )

    # --- D: batched vs event dataplane --------------------------------
    if spec.dataplane == "batched":
        report.oracles_run.append("dataplane_equivalence")
        scenario_d = spec.build(
            dataset, shards=1, observability=False, dataplane="event"
        )
        result_d = scenario_d.run()
        signature_d = scenario_signature(scenario_d, result_d)
        if signature_d != signature_b:
            report.failures.append(
                _diff_hint("dataplane_equivalence", signature_d, signature_b)
            )

    # --- E: disabled collab config vs none ----------------------------
    if spec.collab is not None and not spec.collab_enabled:
        report.oracles_run.append("collab_disabled_identity")
        scenario_e = spec.build(
            dataset, shards=1, observability=False, collab=None
        )
        result_e = scenario_e.run()
        signature_e = scenario_signature(scenario_e, result_e)
        if signature_e != signature_b:
            report.failures.append(
                _diff_hint("collab_disabled_identity", signature_e, signature_b)
            )

    return report


def _city_digest_hint(name: str, left, right) -> str:
    """Point at the first RSU whose rolling digest diverges."""
    for rsu in sorted(set(left.digests) | set(right.digests)):
        if left.digests.get(rsu) != right.digests.get(rsu):
            return f"{name}: first divergent RSU digest at {rsu!r}"
    return f"{name}: digest rollups differ"


def run_city_oracles(spec: FuzzSpec) -> OracleReport:
    """The city-workload oracle stack (no training dataset involved).

    - ``A``: serial **fused** run → conservation audit + the canonical
      digest (the city's per-RSU rollup, not a JSON signature).
    - ``B``: serial **reference** run → kernel equivalence: the fused
      arena kernel must reproduce the PR 7 engine's digests bit for bit.
    - ``C`` (``shards > 1``): the sharded fused engine (with whatever
      rebalance cadence the spec drew) vs ``A`` — shard-count
      invariance of the digest rollup, plus its own audit.
    """
    from repro.city import run_city

    report = OracleReport(spec=spec)

    report.oracles_run.append("city_conservation_audit")
    fused = run_city(spec.city_spec(shards=1, kernel="fused"))
    report.digest = fused.digest_signature()
    report.failures.extend(
        f"city_conservation_audit: {violation}"
        for violation in fused.audit()
    )

    report.oracles_run.append("city_kernel_equivalence")
    reference = run_city(spec.city_spec(shards=1, kernel="reference"))
    if reference.digest_signature() != report.digest:
        report.failures.append(
            _city_digest_hint("city_kernel_equivalence", fused, reference)
        )

    if int(spec.city.get("shards", 1)) > 1:
        report.oracles_run.append("city_shard_invariance")
        sharded = run_city(spec.city_spec(kernel="fused"))
        report.failures.extend(
            f"city_shard_invariance: {violation}"
            for violation in sharded.audit()
        )
        if sharded.digest_signature() != report.digest:
            report.failures.append(
                _city_digest_hint(
                    f"city_shard_invariance[shards={sharded.n_shards}]",
                    fused,
                    sharded,
                )
            )

    return report


def _plant_regression(scenario) -> None:
    """Re-introduce the pre-PR-3 off-by-one: the busiest RSU counts one
    extra issued warning (the migrated-car double count), which the
    warning-conservation law then catches.  Demonstration only."""
    busiest: Optional[Any] = None
    for _, rsu in sorted(scenario.rsus.items()):
        if rsu.warnings_issued > 0 and (
            busiest is None or rsu.warnings_issued > busiest.warnings_issued
        ):
            busiest = rsu
    if busiest is not None:
        busiest.warnings_issued += 1
