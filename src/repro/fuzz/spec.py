"""The frozen, JSON-serializable scenario description the fuzzer draws.

A :class:`FuzzSpec` is one point in the composed scenario space: a
corridor topology, a demand shape (vehicles, duration, handover wave),
a channel-quality preset, an optional fault schedule, the CO-DATA
collaboration knobs, the data-plane mode, and the shard count.  It is
deliberately *not* a :class:`~repro.core.scenario.ScenarioSpec` — it is
smaller (only the axes the fuzzer explores), always valid by
construction (its ``__post_init__`` mirrors every cross-field rule the
builder enforces, so generation never trips a ``ValueError`` mid-run),
and round-trips through JSON so a shrunk failure can be committed to
``tests/fuzz_corpus/`` and replayed forever.

``to_json()`` serializes only the fields that differ from the defaults:
a minimal shrunk repro is a handful of lines, not a wall of knobs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

#: Canonical RNG seeds, single-sourced so the golden suites, the
#: fuzzer's defaults, and committed repro specs can never silently
#: diverge.  ``GOLDEN_SCENARIO_SEED`` matches ``ScenarioSpec().seed``
#: (pinned by a test); ``GOLDEN_DATASET_SEED`` is the labelled-dataset
#: generator seed the golden fixtures use.
GOLDEN_SCENARIO_SEED = 7
GOLDEN_DATASET_SEED = 3

#: Training-dataset size for fuzz runs: big enough to fit real
#: detectors, small enough that one cached build costs ~0.1 s.
FUZZ_DATASET_CARS = 40


@dataclass(frozen=True)
class ChannelPreset:
    """A named channel-quality shape (the SPE-runner pattern): a
    baseline DSRC loss probability plus, for ``unstable``, an
    interference burst injected through the fault machinery."""

    loss_prob: float
    #: ``(at_frac, duration_frac, burst_loss_prob)`` of the run length,
    #: or ``None`` for a steady channel.
    burst: Optional[Tuple[float, float, float]] = None


CHANNEL_PRESETS: Dict[str, ChannelPreset] = {
    "stable": ChannelPreset(loss_prob=0.0),
    "lossy": ChannelPreset(loss_prob=0.08),
    "unstable": ChannelPreset(loss_prob=0.03, burst=(0.4, 0.25, 0.25)),
}

#: Fault-schedule entry kinds and their required keys (beyond "kind").
FAULT_KINDS: Dict[str, Tuple[str, ...]] = {
    "broker_crash": ("rsu", "at_s", "restart_after_s", "ack_loss_s"),
    "rsu_kill": ("rsu", "at_s", "failover_to"),
    "link_partition": ("src", "dst", "at_s", "duration_s"),
    "burst_loss": ("rsu", "at_s", "duration_s", "loss_prob"),
}

DATAPLANES = ("event", "batched")

#: City-workload knobs a FuzzSpec may carry (all optional but
#: ``count_scale``/``duration_s`` which default to the cheapest valid
#: run).  Bounds keep a generated city point replayable in seconds.
CITY_KNOBS = ("count_scale", "duration_s", "shards", "rebalance_interval_ticks")
CITY_MAX_COUNT_SCALE = 0.02
CITY_MAX_DURATION_S = 14_400.0
CITY_MAX_SHARDS = 4


@dataclass(frozen=True)
class FuzzSpec:
    """One generated scenario, frozen and JSON-round-trippable.

    Defaults are the cheapest valid corridor — the shrinker moves
    every axis toward them, so a minimal repro serializes to only the
    fields that matter.
    """

    seed: int = GOLDEN_SCENARIO_SEED
    motorways: int = 1
    vehicles: int = 2
    duration_s: float = 1.0
    handover_fraction: float = 0.0
    channel: str = "stable"
    serde_profile: str = "json"
    columnar: bool = True
    dataplane: str = "event"
    shards: int = 1
    #: CollabConfig field overrides (``None`` = no collaboration plane,
    #: the seed handover-only path).
    collab: Optional[Mapping[str, Any]] = None
    #: Scheduled fault events (tuples of plain dicts, see FAULT_KINDS).
    faults: Tuple[Mapping[str, Any], ...] = ()
    #: Training-dataset parameters (fixed by default so every replay
    #: trains byte-identical detectors).
    dataset_seed: int = GOLDEN_DATASET_SEED
    dataset_cars: int = FUZZ_DATASET_CARS
    #: City-workload knobs (see CITY_KNOBS) — ``None`` keeps the spec a
    #: corridor scenario.  A city spec swaps the whole oracle stack: the
    #: corridor axes must stay at their defaults, and the differential
    #: oracles become fused-vs-reference kernel equivalence plus
    #: shard-count invariance of the digest rollup.
    city: Optional[Mapping[str, Any]] = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "faults",
            tuple(dict(event) for event in self.faults),
        )
        if self.collab is not None:
            object.__setattr__(self, "collab", dict(self.collab))
        if self.city is not None:
            object.__setattr__(self, "city", dict(self.city))
            self._validate_city(self.city)
        if self.motorways < 1:
            raise ValueError("motorways must be >= 1")
        if self.vehicles < 1:
            raise ValueError("vehicles must be >= 1")
        if not 0.0 < self.duration_s <= 30.0:
            raise ValueError("duration_s must be in (0, 30]")
        if not 0.0 <= self.handover_fraction <= 1.0:
            raise ValueError("handover_fraction must be in [0, 1]")
        if self.channel not in CHANNEL_PRESETS:
            raise ValueError(
                f"unknown channel preset {self.channel!r}; "
                f"choose from {sorted(CHANNEL_PRESETS)}"
            )
        if self.dataplane not in DATAPLANES:
            raise ValueError(f"unknown dataplane {self.dataplane!r}")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.dataset_cars < 10:
            raise ValueError("dataset_cars must be >= 10 to train detectors")
        # The cross-feature rules the scenario layer enforces, mirrored
        # here so every constructed FuzzSpec maps to a valid run.
        if self.has_faults:
            if self.dataplane == "batched":
                raise ValueError("fault schedules require the event dataplane")
            if self.shards > 1:
                raise ValueError("fault schedules run single-process")
            if self.collab_enabled:
                raise ValueError(
                    "an enabled collaboration plane requires a fault-free run"
                )
        if self.dataplane == "batched" and self.shards > 1:
            raise ValueError("the batched dataplane runs single-process")
        for event in self.faults:
            self._validate_fault(event)
        if self.collab is not None:
            # Constructing the config runs its own validation.
            self.collab_config()

    def _validate_city(self, knobs: Mapping[str, Any]) -> None:
        unknown = sorted(set(knobs) - set(CITY_KNOBS))
        if unknown:
            raise ValueError(
                f"unknown city knobs {unknown}; known: {list(CITY_KNOBS)}"
            )
        scale = float(knobs.get("count_scale", 0.002))
        if not 0.0 < scale <= CITY_MAX_COUNT_SCALE:
            raise ValueError(
                f"city count_scale must be in (0, {CITY_MAX_COUNT_SCALE}]"
            )
        duration = float(knobs.get("duration_s", 600.0))
        if not 60.0 <= duration <= CITY_MAX_DURATION_S:
            raise ValueError(
                f"city duration_s must be in [60, {CITY_MAX_DURATION_S}]"
            )
        shards = int(knobs.get("shards", 1))
        if not 1 <= shards <= CITY_MAX_SHARDS:
            raise ValueError(f"city shards must be in [1, {CITY_MAX_SHARDS}]")
        interval = int(knobs.get("rebalance_interval_ticks", 0))
        if interval < 0:
            raise ValueError("city rebalance_interval_ticks must be >= 0")
        # A city spec replaces the corridor scenario wholesale, so the
        # corridor-only axes must stay inert.
        if self.faults or self.collab is not None:
            raise ValueError("a city spec carries no faults or collab plane")
        if self.dataplane != "event" or self.shards != 1:
            raise ValueError(
                "a city spec keeps the corridor dataplane/shards at their "
                "defaults; shard count lives inside the city knobs"
            )

    def _validate_fault(self, event: Mapping[str, Any]) -> None:
        kind = event.get("kind")
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        missing = [key for key in FAULT_KINDS[kind] if key not in event]
        if missing:
            raise ValueError(f"fault {kind!r} missing keys {missing}")
        names = set(self.rsu_names())
        for key in ("rsu", "src", "dst", "failover_to"):
            if key in event and event[key] not in names:
                raise ValueError(
                    f"fault {kind!r} targets unknown RSU {event[key]!r} "
                    f"(corridor has {sorted(names)})"
                )
        at = float(event["at_s"])
        if not 0.0 < at < self.duration_s:
            raise ValueError(
                f"fault {kind!r} at_s={at} outside (0, {self.duration_s})"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def rsu_names(self) -> Tuple[str, ...]:
        """The corridor's RSU names for this motorway count."""
        return tuple(
            f"rsu-mw-{index + 1}" for index in range(self.motorways)
        ) + ("rsu-mw-link",)

    @property
    def collab_enabled(self) -> bool:
        if self.collab is None:
            return False
        return self.collab_config().enabled

    def collab_config(self):
        """The :class:`~repro.core.collab.CollabConfig` (or ``None``)."""
        if self.collab is None:
            return None
        from repro.core.collab import CollabConfig

        return CollabConfig(**self.collab)

    @property
    def has_faults(self) -> bool:
        """Whether the run injects faults — scheduled events or the
        ``unstable`` channel's interference burst."""
        return bool(self.faults) or (
            CHANNEL_PRESETS[self.channel].burst is not None
        )

    def fault_profile(self):
        """The combined :class:`~repro.faults.events.FaultProfile`
        (scheduled events plus the channel preset's burst), or ``None``."""
        from repro.faults.events import (
            BrokerCrash,
            BurstLoss,
            FaultProfile,
            LinkPartition,
            RsuKill,
        )

        events = []
        for event in self.faults:
            kind = event["kind"]
            if kind == "broker_crash":
                events.append(
                    BrokerCrash(
                        event["rsu"],
                        at_s=float(event["at_s"]),
                        restart_after_s=float(event["restart_after_s"]),
                        ack_loss_s=float(event["ack_loss_s"]),
                    )
                )
            elif kind == "rsu_kill":
                events.append(
                    RsuKill(
                        event["rsu"],
                        at_s=float(event["at_s"]),
                        failover_to=event["failover_to"],
                    )
                )
            elif kind == "link_partition":
                events.append(
                    LinkPartition(
                        event["src"],
                        event["dst"],
                        at_s=float(event["at_s"]),
                        duration_s=float(event["duration_s"]),
                    )
                )
            elif kind == "burst_loss":
                events.append(
                    BurstLoss(
                        event["rsu"],
                        at_s=float(event["at_s"]),
                        duration_s=float(event["duration_s"]),
                        loss_prob=float(event["loss_prob"]),
                    )
                )
        burst = CHANNEL_PRESETS[self.channel].burst
        if burst is not None:
            at_frac, duration_frac, loss = burst
            events.append(
                BurstLoss(
                    "rsu-mw-1",
                    at_s=self.duration_s * at_frac,
                    duration_s=self.duration_s * duration_frac,
                    loss_prob=loss,
                )
            )
        if not events:
            return None
        return FaultProfile("fuzz", tuple(events))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def scenario_spec(self, **overrides):
        """The full :class:`~repro.core.scenario.ScenarioSpec`.

        ``overrides`` lets the oracle stack build comparator variants
        (``shards=1``, ``observability=True``, ``dataplane="event"``,
        ``collab=None``) of the same generated point.
        """
        from repro.core.scenario import DEFAULT_UPSTREAM_TIMEOUT_S, ScenarioSpec
        from repro.streaming.producer import RetryPolicy

        profile = self.fault_profile()
        kwargs: Dict[str, Any] = {
            "n_vehicles": self.vehicles,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "handover_fraction": self.handover_fraction,
            "loss_prob": CHANNEL_PRESETS[self.channel].loss_prob,
            "serde_profile": self.serde_profile,
            "columnar": self.columnar,
            "dataplane": self.dataplane,
            "shards": self.shards,
            "collab": self.collab_config(),
            "faults": profile,
        }
        if profile is not None:
            # The delivery guarantees a faulty run needs, exactly as
            # ScenarioBuilder.faults() would switch on.
            kwargs["producer_retry"] = RetryPolicy()
            kwargs["upstream_timeout_s"] = DEFAULT_UPSTREAM_TIMEOUT_S
        kwargs.update(overrides)
        return ScenarioSpec(**kwargs)

    def city_spec(self, **overrides):
        """The :class:`~repro.city.model.CitySpec` for a city fuzz
        point; ``overrides`` builds the oracle comparators (``shards=1``,
        ``kernel="reference"``) of the same generated workload."""
        if self.city is None:
            raise ValueError("not a city spec")
        from repro.city import CitySpec

        kwargs: Dict[str, Any] = {
            "seed": self.seed,
            "count_scale": float(self.city.get("count_scale", 0.002)),
            "duration_s": float(self.city.get("duration_s", 600.0)),
            "shards": int(self.city.get("shards", 1)),
            "rebalance_interval_ticks": int(
                self.city.get("rebalance_interval_ticks", 0)
            ),
        }
        kwargs.update(overrides)
        return CitySpec(**kwargs)

    def build(self, dataset, **overrides):
        """A runnable engine for this spec (spec overrides applied)."""
        from repro.core.workload import CorridorWorkload

        return CorridorWorkload(
            self.scenario_spec(**overrides),
            motorways=self.motorways,
            dataset=dataset,
        ).build()

    # ------------------------------------------------------------------
    # JSON codec
    # ------------------------------------------------------------------
    def to_payload(self, minimal: bool = True) -> Dict[str, Any]:
        """A JSON-ready dict; ``minimal`` omits default-valued fields."""
        payload: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if minimal and value == self._field_default(spec_field):
                continue
            if spec_field.name == "faults":
                value = [dict(event) for event in value]
            elif spec_field.name == "collab" and value is not None:
                value = dict(value)
            payload[spec_field.name] = value
        return payload

    @staticmethod
    def _field_default(spec_field) -> Any:
        return spec_field.default

    def to_json(self, minimal: bool = True) -> str:
        return json.dumps(
            self.to_payload(minimal=minimal), sort_keys=True, indent=1
        )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FuzzSpec":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown FuzzSpec fields: {unknown}")
        kwargs = dict(payload)
        if "faults" in kwargs:
            kwargs["faults"] = tuple(dict(e) for e in kwargs["faults"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FuzzSpec":
        return cls.from_payload(json.loads(text))

    def replace(self, **overrides) -> "FuzzSpec":
        return replace(self, **overrides)
