"""Synthetic Shenzhen-like driving dataset.

The paper trains and evaluates on a proprietary dataset of 3,306 private
cars / 214,718 trips / 17.9 M trajectories collected in Shenzhen in July
2016.  That data is not available, so this package generates a
statistically calibrated substitute:

- :mod:`repro.dataset.schema` — record types mirroring the paper's
  Tables I (trips / trajectories) and II (preprocessed features).
- :mod:`repro.dataset.speed_profiles` — per-road-type speed
  distributions with hour-of-day / day-of-week modulation (Fig. 2).
- :mod:`repro.dataset.drivers` — per-driver behaviour model with
  persistent anomaly episodes (what makes collaboration pay off).
- :mod:`repro.dataset.generator` — trip/trajectory/telemetry synthesis.
- :mod:`repro.dataset.preprocess` — Eq. 4 speed/acceleration
  derivation, erroneous-record filtering, sigma-cutoff labelling.
- :mod:`repro.dataset.stats` — Table III-style dataset statistics.
- :mod:`repro.dataset.io` — CSV round-tripping.
"""

from repro.dataset.drivers import DriverModel, DriverProfile
from repro.dataset.extract import ExtractionReport, extract_trips
from repro.dataset.generator import DatasetGenerator, GeneratorConfig, SyntheticDataset
from repro.dataset.io import (
    read_telemetry_csv,
    read_trips_csv,
    write_telemetry_csv,
    write_trips_csv,
)
from repro.dataset.preprocess import (
    FilterConfig,
    Preprocessor,
    SigmaCutoffLabeler,
    derive_telemetry,
)
from repro.dataset.schema import (
    ABNORMAL,
    NORMAL,
    AnomalyKind,
    TelemetryRecord,
    TrajectoryPoint,
    Trip,
)
from repro.dataset.speed_profiles import SpeedProfile, SpeedProfileLibrary
from repro.dataset.stats import DatasetStatistics, compute_statistics

__all__ = [
    "ABNORMAL",
    "AnomalyKind",
    "DatasetGenerator",
    "DatasetStatistics",
    "DriverModel",
    "DriverProfile",
    "ExtractionReport",
    "FilterConfig",
    "GeneratorConfig",
    "NORMAL",
    "Preprocessor",
    "SigmaCutoffLabeler",
    "SpeedProfile",
    "SpeedProfileLibrary",
    "SyntheticDataset",
    "TelemetryRecord",
    "TrajectoryPoint",
    "Trip",
    "compute_statistics",
    "derive_telemetry",
    "extract_trips",
    "read_telemetry_csv",
    "read_trips_csv",
    "write_telemetry_csv",
    "write_trips_csv",
]
