"""Synthetic trip / trajectory / telemetry generation.

Substitute for the paper's proprietary Shenzhen private-car dataset.
The generator produces three artefacts:

- **Trips** with GPS trajectories (Table I shape) — used to exercise
  the map-matching and Eq. 4 preprocessing path.
- **Telemetry records** (Table II shape) — the feature rows consumed by
  the detection models; produced directly at scale.
- Per-record **ground-truth anomaly kinds** — what the paper's offline
  sigma-cutoff labelling approximates.

The behavioural structure that matters for CAD3 (persistent per-driver
anomaly episodes spanning segment handovers) comes from
:class:`repro.dataset.drivers.DriverModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.drivers import DriverModel, DriverProfile
from repro.dataset.schema import AnomalyKind, TelemetryRecord, TrajectoryPoint, Trip
from repro.dataset.speed_profiles import SpeedProfileLibrary
from repro.geo.coords import LatLon
from repro.geo.roadnet import RoadNetwork, RoadSegment, RoadType
from repro.simkernel.rng import RngRegistry

#: Seconds in a day; trips are placed inside a (day, hour) grid.
DAY_S = 86_400.0


@dataclass
class GeneratorConfig:
    """Knobs for the synthetic dataset.

    Defaults are sized for unit-test speed; experiment harnesses scale
    ``n_cars`` / ``trips_per_car`` up to paper-sized workloads.
    """

    n_cars: int = 50
    n_days: int = 7
    trips_per_car: int = 4  # mean trips per car over the whole window
    sample_period_s: float = 3.0  # telemetry sampling period
    max_records_per_segment: int = 60
    min_records_per_segment: int = 3
    erroneous_rate: float = 0.01  # fraction of corrupted records
    gps_noise_m: float = 8.0
    seed: int = 42
    #: Trip shape: "corridor" sends every trip motorway -> motorway
    #: link (the microscopic use case); "random" walks the road graph;
    #: "routed" Dijkstra-routes between random segments (connected
    #: networks such as the grid city).
    route_plan: str = "corridor"
    route_length: int = 3  # segments per random-walk route

    def __post_init__(self) -> None:
        if self.n_cars < 1:
            raise ValueError("n_cars must be >= 1")
        if not 1 <= self.n_days <= 31:
            raise ValueError("n_days must be in [1, 31]")
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if not 0.0 <= self.erroneous_rate < 1.0:
            raise ValueError("erroneous_rate must be in [0, 1)")
        if self.route_plan not in ("corridor", "random", "routed"):
            raise ValueError(f"unknown route_plan: {self.route_plan}")


@dataclass
class SyntheticDataset:
    """The generator's output bundle."""

    records: List[TelemetryRecord]
    trips: List[Trip]
    network: RoadNetwork
    profiles: SpeedProfileLibrary
    drivers: Dict[int, DriverProfile] = field(default_factory=dict)

    def by_road_type(self, road_type: RoadType) -> List[TelemetryRecord]:
        return [r for r in self.records if r.road_type is road_type]

    def split(
        self, train_fraction: float = 0.8, seed: int = 0
    ) -> Tuple[List[TelemetryRecord], List[TelemetryRecord]]:
        """Deterministic shuffled train/test split (paper uses 80/20)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        order = np.random.default_rng(seed).permutation(len(self.records))
        cut = int(len(self.records) * train_fraction)
        train = [self.records[i] for i in order[:cut]]
        test = [self.records[i] for i in order[cut:]]
        return train, test

    def split_by_trip(
        self, train_fraction: float = 0.8, seed: int = 0
    ) -> Tuple[List[TelemetryRecord], List[TelemetryRecord]]:
        """Split keeping each trip's records together.

        The collaborative model consumes per-trip prediction history, so
        its evaluation must not leak records of one trip across the
        split.  Trips are keyed by the record's ``trip_id``.
        """
        by_trip: Dict[int, List[TelemetryRecord]] = {}
        for record in self.records:
            by_trip.setdefault(record.trip_id, []).append(record)
        trips = [by_trip[tid] for tid in sorted(by_trip)]
        order = np.random.default_rng(seed).permutation(len(trips))
        cut = int(len(trips) * train_fraction)
        train = [r for i in order[:cut] for r in trips[i]]
        test = [r for i in order[cut:] for r in trips[i]]
        return train, test


class DatasetGenerator:
    """Generate a :class:`SyntheticDataset` over a road network."""

    #: Aggressiveness is Beta-distributed: most drivers are calm, a
    #: long tail is aggressive.
    AGGRESSIVENESS_ALPHA = 2.0
    AGGRESSIVENESS_BETA = 5.0

    def __init__(
        self,
        network: RoadNetwork,
        config: Optional[GeneratorConfig] = None,
        profiles: Optional[SpeedProfileLibrary] = None,
    ) -> None:
        self.network = network
        self.config = config or GeneratorConfig()
        self.profiles = profiles or SpeedProfileLibrary()
        registry = RngRegistry(self.config.seed)
        self._rng = registry.stream("dataset.generator")
        self._driver_rng = registry.stream("dataset.drivers")
        self._error_rng = registry.stream("dataset.errors")
        self._router = None  # built lazily for the "routed" plan

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def make_drivers(self) -> Dict[int, DriverProfile]:
        drivers = {}
        for car_id in range(1, self.config.n_cars + 1):
            aggressiveness = float(
                self._rng.beta(self.AGGRESSIVENESS_ALPHA, self.AGGRESSIVENESS_BETA)
            )
            bias = float(self._rng.normal(0.0, 3.0))
            drivers[car_id] = DriverProfile(
                car_id=car_id,
                aggressiveness=aggressiveness,
                speed_bias_kmh=bias,
            )
        return drivers

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _corridor_route(self) -> List[RoadSegment]:
        motorways = self.network.by_road_type(RoadType.MOTORWAY)
        links = self.network.by_road_type(RoadType.MOTORWAY_LINK)
        if not motorways or not links:
            raise ValueError(
                "corridor route plan needs motorway and motorway_link "
                "segments in the network"
            )
        motorway = motorways[int(self._rng.integers(len(motorways)))]
        link = links[int(self._rng.integers(len(links)))]
        return [motorway, link]

    def _random_route(self) -> List[RoadSegment]:
        ids = self.network.segment_ids()
        start = ids[int(self._rng.integers(len(ids)))]
        route = [self.network.segment(start)]
        current = start
        for _ in range(self.config.route_length - 1):
            neighbors = self.network.neighbors(current)
            if not neighbors:
                break
            current = neighbors[int(self._rng.integers(len(neighbors)))]
            route.append(self.network.segment(current))
        return route

    def _routed_route(self) -> List[RoadSegment]:
        from repro.geo.router import RouteNotFound, Router

        if self._router is None:
            self._router = Router(self.network)
        ids = self.network.segment_ids()
        for _ in range(20):
            source = ids[int(self._rng.integers(len(ids)))]
            destination = ids[int(self._rng.integers(len(ids)))]
            try:
                path = self._router.route(source, destination)
            except RouteNotFound:
                continue
            if len(path) >= 2:
                return [self.network.segment(sid) for sid in path]
        # Disconnected or degenerate network: fall back to a walk.
        return self._random_route()

    def _route(self) -> List[RoadSegment]:
        if self.config.route_plan == "corridor":
            return self._corridor_route()
        if self.config.route_plan == "routed":
            return self._routed_route()
        return self._random_route()

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, with_trajectories: bool = False) -> SyntheticDataset:
        """Produce the full dataset.

        Parameters
        ----------
        with_trajectories:
            Also synthesise per-trip GPS fixes (slower; used by the
            map-matching / preprocessing path and its tests).
        """
        drivers = self.make_drivers()
        records: List[TelemetryRecord] = []
        trips: List[Trip] = []
        trip_object_id = 1
        for car_id, profile in drivers.items():
            model = DriverModel(profile, self._driver_rng)
            n_trips = max(
                1, int(self._rng.poisson(self.config.trips_per_car))
            )
            for _ in range(n_trips):
                day = int(self._rng.integers(1, self.config.n_days + 1))
                hour = self._sample_trip_hour()
                route = self._route()
                trip_records, trip = self._generate_trip(
                    trip_object_id,
                    car_id,
                    model,
                    route,
                    day,
                    hour,
                    with_trajectories,
                )
                records.extend(trip_records)
                if trip is not None:
                    trips.append(trip)
                trip_object_id += 1
        return SyntheticDataset(
            records=records,
            trips=trips,
            network=self.network,
            profiles=self.profiles,
            drivers=drivers,
        )

    def _sample_trip_hour(self) -> int:
        """Trip start hours concentrate at rush hours (bimodal)."""
        if self._rng.random() < 0.6:
            center = 8.0 if self._rng.random() < 0.5 else 18.0
            hour = int(round(self._rng.normal(center, 2.0)))
        else:
            hour = int(self._rng.integers(0, 24))
        return min(23, max(0, hour))

    def _generate_trip(
        self,
        object_id: int,
        car_id: int,
        model: DriverModel,
        route: Sequence[RoadSegment],
        day: int,
        hour: int,
        with_trajectories: bool,
    ) -> Tuple[List[TelemetryRecord], Optional[Trip]]:
        config = self.config
        model.begin_trip()
        records: List[TelemetryRecord] = []
        fixes: List[TrajectoryPoint] = []
        weekend = TelemetryRecord(
            car_id=car_id,
            road_id=route[0].segment_id,
            accel_ms2=0.0,
            speed_kmh=0.0,
            hour=hour,
            day=day,
            road_type=route[0].road_type,
            road_mean_speed_kmh=1.0,
        ).is_weekend
        start_time = (day - 1) * DAY_S + hour * 3600.0
        clock = start_time
        for leg_index, segment in enumerate(route):
            if leg_index > 0:
                model.on_segment_change()
            profile = self.profiles.profile(segment.road_type, hour, weekend)
            n_samples = self._samples_for_segment(segment, profile.mean_kmh)
            # The behaviour state is fixed for the whole segment, so the
            # per-sample speed/accel normals batch into one vectorized
            # draw with identical stream consumption.  Only a
            # SUDDEN_ACCELERATION episode interleaves a uniform between
            # the normals and must keep the scalar loop.
            if model.anomaly_kind is AnomalyKind.SUDDEN_ACCELERATION:
                pairs = [
                    (
                        model.sample_speed(profile.mean_kmh, profile.sigma_kmh),
                        model.sample_accel(
                            profile.sigma_kmh, config.sample_period_s
                        ),
                    )
                    for _ in range(n_samples)
                ]
            else:
                speeds, accels = model.sample_batch(
                    profile.mean_kmh, profile.sigma_kmh, n_samples
                )
                pairs = list(zip(speeds.tolist(), accels.tolist()))
            pairs = self._corrupt_batch(pairs)
            offset_m = 0.0
            for speed, accel in pairs:
                records.append(
                    TelemetryRecord(
                        car_id=car_id,
                        road_id=segment.segment_id,
                        accel_ms2=accel,
                        speed_kmh=speed,
                        hour=hour,
                        day=day,
                        road_type=segment.road_type,
                        road_mean_speed_kmh=profile.mean_kmh,
                        anomaly_kind=model.anomaly_kind,
                        timestamp=clock,
                        trip_id=object_id,
                    )
                )
                if with_trajectories:
                    point = segment.point_at(offset_m)
                    fixes.append(self._noisy_fix(object_id, point, clock))
                offset_m += (speed / 3.6) * config.sample_period_s
                clock += config.sample_period_s
        trip = None
        if with_trajectories and fixes:
            trip = Trip(
                object_id=object_id,
                car_id=car_id,
                start_time=start_time,
                stop_time=clock,
                start_lon=fixes[0].lon,
                start_lat=fixes[0].lat,
                stop_lon=fixes[-1].lon,
                stop_lat=fixes[-1].lat,
                mileage_km=sum(seg.length_m for seg in route) / 1000.0,
                trajectory=fixes,
            )
        return records, trip

    def _samples_for_segment(
        self, segment: RoadSegment, mean_speed_kmh: float
    ) -> int:
        """Telemetry samples for one traversal, from traversal time."""
        config = self.config
        traversal_s = segment.length_m / max(mean_speed_kmh / 3.6, 1.0)
        n_samples = int(traversal_s / config.sample_period_s)
        return max(
            config.min_records_per_segment,
            min(config.max_records_per_segment, n_samples),
        )

    def _maybe_corrupt(self, speed: float, accel: float) -> Tuple[float, float]:
        """Inject the erroneous measurements the paper filters out."""
        if self._error_rng.random() >= self.config.erroneous_rate:
            return speed, accel
        mode = self._error_rng.integers(3)
        if mode == 0:
            return float(self._error_rng.uniform(400.0, 1000.0)), accel
        if mode == 1:
            return speed, float(self._error_rng.uniform(25.0, 80.0))
        return 0.0, 0.0  # stuck-sensor reading

    def _corrupt_batch(
        self, pairs: List[Tuple[float, float]]
    ) -> List[Tuple[float, float]]:
        """Apply :meth:`_maybe_corrupt` to a segment's samples.

        Fast path: draw the per-sample gate uniforms as one block.
        When none trips (the common case at the default 1% rate) the
        error stream has consumed exactly the same ``n`` doubles the
        scalar loop would have, and nothing else.  When any trips, the
        corruption draws must interleave with the gates sample by
        sample, so the stream is rewound to the snapshot and the scalar
        loop replays it faithfully.
        """
        n = len(pairs)
        rate = self.config.erroneous_rate
        if n == 0 or rate == 0.0:
            if n:
                self._error_rng.random(n)  # keep the gate consumption
            return pairs
        state = self._error_rng.bit_generator.state
        gates = self._error_rng.random(n)
        if not (gates < rate).any():
            return pairs
        self._error_rng.bit_generator.state = state
        return [self._maybe_corrupt(speed, accel) for speed, accel in pairs]

    def _noisy_fix(
        self, object_id: int, point: LatLon, timestamp: float
    ) -> TrajectoryPoint:
        # ~1e-5 degrees per metre at Shenzhen's latitude.
        noise_deg = self.config.gps_noise_m * 1e-5
        return TrajectoryPoint(
            object_id=object_id,
            lon=point.lon + float(self._rng.normal(0.0, noise_deg)),
            lat=point.lat + float(self._rng.normal(0.0, noise_deg)),
            gps_time=timestamp,
        )
