"""Offline preprocessing: Eq. 4 derivation, filtering, sigma labelling.

This is the paper's offline stage (Sec. IV-B):

1. Derive instantaneous speed and acceleration from raw GPS
   trajectories (Eq. 4) and map-match each fix to recover road context.
2. Filter erroneous measurements (Table III is stated "after filtering
   the erroneous values").
3. Label each point by the sigma cut-off: normal (class = 1) when speed
   and acceleration are within [mu - sigma, mu + sigma] of the
   road-type distribution, abnormal (class = 0) otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.schema import ABNORMAL, NORMAL, TelemetryRecord, Trip
from repro.geo.coords import LatLon
from repro.geo.distance import haversine_m
from repro.geo.mapmatch import HmmMapMatcher
from repro.geo.roadnet import RoadNetwork, RoadType


@dataclass(frozen=True)
class FilterConfig:
    """Bounds used to drop erroneous measurements.

    Values generous enough to keep genuine anomalies (the point of the
    system) while dropping physically impossible readings.
    """

    max_speed_kmh: float = 300.0
    max_abs_accel_ms2: float = 20.0
    drop_stuck: bool = True  # speed == 0 and accel == 0 exactly

    def keep(self, record: TelemetryRecord) -> bool:
        if not math.isfinite(record.speed_kmh) or not math.isfinite(
            record.accel_ms2
        ):
            return False
        if record.speed_kmh > self.max_speed_kmh:
            return False
        if abs(record.accel_ms2) > self.max_abs_accel_ms2:
            return False
        if self.drop_stuck and record.speed_kmh == 0.0 and record.accel_ms2 == 0.0:
            return False
        return True


class SigmaCutoffLabeler:
    """The paper's sigma cut-off labelling rule.

    A record is *normal* iff both its speed and its acceleration fall
    within ``[mu - n_sigma * sigma, mu + n_sigma * sigma]`` of the
    empirical distribution of its context (the paper uses
    ``n_sigma = 1``).

    ``granularity`` selects the context:

    - ``"type"`` (the paper): one band per road type;
    - ``"type_hour"``: one band per (road type, hour) — the
      finer-grained normality Fig. 2's hourly variation implies.
      Hours unseen at fit time fall back to the road-type band.
    """

    def __init__(
        self, n_sigma: float = 1.0, granularity: str = "type"
    ) -> None:
        if n_sigma <= 0:
            raise ValueError(f"n_sigma must be positive: {n_sigma}")
        if granularity not in ("type", "type_hour"):
            raise ValueError(f"unknown granularity: {granularity!r}")
        self.n_sigma = n_sigma
        self.granularity = granularity
        self._speed_bands: Dict[object, Tuple[float, float]] = {}
        self._accel_bands: Dict[object, Tuple[float, float]] = {}
        self._fitted = False

    #: Minimum samples for a (type, hour) band; sparser cells fall
    #: back to the road-type band.
    MIN_CELL_SAMPLES = 30

    def _keys(self, record: TelemetryRecord) -> list:
        keys: list = []
        if self.granularity == "type_hour":
            keys.append((record.road_type, record.hour))
        keys.append(record.road_type)
        return keys

    def fit(self, records: Sequence[TelemetryRecord]) -> "SigmaCutoffLabeler":
        if not records:
            raise ValueError("cannot fit labeler on an empty dataset")
        groups: Dict[object, List[TelemetryRecord]] = {}
        for record in records:
            groups.setdefault(record.road_type, []).append(record)
            if self.granularity == "type_hour":
                groups.setdefault(
                    (record.road_type, record.hour), []
                ).append(record)
        for key, group in groups.items():
            if (
                isinstance(key, tuple)
                and len(group) < self.MIN_CELL_SAMPLES
            ):
                continue  # too sparse: rely on the type-level band
            speeds = np.array([r.speed_kmh for r in group])
            accels = np.array([r.accel_ms2 for r in group])
            self._speed_bands[key] = self._band(speeds)
            self._accel_bands[key] = self._band(accels)
        self._fitted = True
        return self

    def _band(self, values: np.ndarray) -> Tuple[float, float]:
        mu = float(values.mean())
        sigma = float(values.std())
        return (mu - self.n_sigma * sigma, mu + self.n_sigma * sigma)

    def band(self, road_type: RoadType) -> Tuple[float, float]:
        """The fitted road-type-level speed band."""
        self._require_fitted()
        return self._speed_bands[road_type]

    def _lookup(self, bands: Dict, record: TelemetryRecord):
        for key in self._keys(record):
            if key in bands:
                return bands[key]
        raise KeyError(
            f"labeler not fitted for road type {record.road_type}"
        )

    def label(self, record: TelemetryRecord) -> int:
        self._require_fitted()
        lo_s, hi_s = self._lookup(self._speed_bands, record)
        lo_a, hi_a = self._lookup(self._accel_bands, record)
        speed_ok = lo_s <= record.speed_kmh <= hi_s
        accel_ok = lo_a <= record.accel_ms2 <= hi_a
        return NORMAL if (speed_ok and accel_ok) else ABNORMAL

    def label_all(
        self, records: Iterable[TelemetryRecord]
    ) -> List[TelemetryRecord]:
        return [r.with_label(self.label(r)) for r in records]

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("labeler must be fitted before use")


class Preprocessor:
    """Filter + label pipeline over telemetry records."""

    def __init__(
        self,
        filter_config: Optional[FilterConfig] = None,
        n_sigma: float = 1.0,
        granularity: str = "type",
    ) -> None:
        self.filter_config = filter_config or FilterConfig()
        self.labeler = SigmaCutoffLabeler(
            n_sigma=n_sigma, granularity=granularity
        )

    def run(
        self, records: Sequence[TelemetryRecord]
    ) -> List[TelemetryRecord]:
        """Filter erroneous records, fit the labeler, label the rest."""
        kept = [r for r in records if self.filter_config.keep(r)]
        if not kept:
            return []
        self.labeler.fit(kept)
        return self.labeler.label_all(kept)


def derive_telemetry(
    trip: Trip,
    network: RoadNetwork,
    matcher: Optional[HmmMapMatcher] = None,
    road_mean_speeds: Optional[Dict[int, float]] = None,
) -> List[TelemetryRecord]:
    """Eq. 4: derive Table II feature rows from a raw GPS trip.

    Instantaneous speed is the great-circle distance between
    consecutive fixes over their time delta; acceleration is the speed
    delta over the time delta.  Each fix is map-matched to recover road
    id and type.  ``road_mean_speeds`` (segment id -> mean speed, km/h)
    provides the ``v_r_bar`` context; when absent, the segment's
    free-flow speed is used.

    Fixes that fail to map-match, or have non-increasing timestamps,
    are skipped.
    """
    matcher = matcher or HmmMapMatcher(network)
    fixes = trip.trajectory
    if len(fixes) < 2:
        return []
    match = matcher.match([LatLon(f.lat, f.lon) for f in fixes])
    records: List[TelemetryRecord] = []
    prev_speed_kmh: Optional[float] = None
    for current, nxt, matched in zip(fixes, fixes[1:], match.points):
        dt = nxt.gps_time - current.gps_time
        if dt <= 0 or matched is None:
            prev_speed_kmh = None
            continue
        dist_m = haversine_m(current.lat, current.lon, nxt.lat, nxt.lon)
        speed_kmh = (dist_m / dt) * 3.6
        if prev_speed_kmh is None:
            accel = 0.0
        else:
            accel = ((speed_kmh - prev_speed_kmh) / 3.6) / dt
        prev_speed_kmh = speed_kmh
        segment = network.segment(matched.segment_id)
        if road_mean_speeds and matched.segment_id in road_mean_speeds:
            v_r_bar = road_mean_speeds[matched.segment_id]
        else:
            v_r_bar = segment.free_flow_kmh
        day = int(current.gps_time // 86_400.0) + 1
        hour = int((current.gps_time % 86_400.0) // 3600.0)
        records.append(
            TelemetryRecord(
                car_id=trip.car_id,
                road_id=matched.segment_id,
                accel_ms2=accel,
                speed_kmh=speed_kmh,
                hour=hour,
                day=min(day, 31),
                road_type=segment.road_type,
                road_mean_speed_kmh=v_r_bar,
                timestamp=current.gps_time,
            )
        )
    return records


def road_mean_speeds(
    records: Sequence[TelemetryRecord],
) -> Dict[int, float]:
    """Per-road mean instantaneous speed, Eq. 4's ``v_r_bar``."""
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for record in records:
        sums[record.road_id] = sums.get(record.road_id, 0.0) + record.speed_kmh
        counts[record.road_id] = counts.get(record.road_id, 0) + 1
    return {rid: sums[rid] / counts[rid] for rid in sums}
