"""City-boundary extraction (Sec. V).

"Using Shenzhen's boundaries, we extract the trips and trajectories
within the city and map them onto its road network" — the first step
of the paper's preprocessing.  Given a bounding box, a trip is

- kept whole when every fix lies inside,
- clipped to its inside fixes when it crosses the boundary (the
  outside portion belongs to another region's RSUs),
- dropped when no fix lies inside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dataset.schema import Trip
from repro.geo.coords import BoundingBox, LatLon


@dataclass
class ExtractionReport:
    """What the boundary filter did."""

    trips_in: int
    trips_kept: int
    trips_clipped: int
    trips_dropped: int
    fixes_in: int
    fixes_kept: int

    @property
    def fix_retention(self) -> float:
        if self.fixes_in == 0:
            return 0.0
        return self.fixes_kept / self.fixes_in


def extract_trips(
    trips: Sequence[Trip], bbox: BoundingBox
) -> tuple:
    """Filter/clip ``trips`` to ``bbox``.

    Returns ``(kept_trips, report)``.  Clipped trips keep their
    original identity and metadata; their trajectory, start/stop
    coordinates, and times are narrowed to the inside span.
    """
    kept: List[Trip] = []
    report = ExtractionReport(
        trips_in=len(trips),
        trips_kept=0,
        trips_clipped=0,
        trips_dropped=0,
        fixes_in=0,
        fixes_kept=0,
    )
    for trip in trips:
        report.fixes_in += len(trip.trajectory)
        inside = [
            point
            for point in trip.trajectory
            if bbox.contains(LatLon(point.lat, point.lon))
        ]
        if not inside:
            report.trips_dropped += 1
            continue
        report.fixes_kept += len(inside)
        if len(inside) == len(trip.trajectory):
            report.trips_kept += 1
            kept.append(trip)
            continue
        report.trips_clipped += 1
        kept.append(
            Trip(
                object_id=trip.object_id,
                car_id=trip.car_id,
                start_time=inside[0].gps_time,
                stop_time=inside[-1].gps_time,
                start_lon=inside[0].lon,
                start_lat=inside[0].lat,
                stop_lon=inside[-1].lon,
                stop_lat=inside[-1].lat,
                mileage_km=trip.mileage_km,
                fuel_l=trip.fuel_l,
                trajectory=inside,
            )
        )
    return kept, report
