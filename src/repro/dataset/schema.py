"""Record types for the driving dataset.

These mirror the paper's Table I (raw trips and GPS trajectories) and
Table II (the preprocessed feature rows fed to the detectors):

    CarID | RdID | accel | Speed | Hour | Day | RdType | v_r_bar

plus the offline sigma-cutoff label (``class``: 1 = normal,
0 = abnormal) used for training and evaluation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.geo.roadnet import RoadType

#: Class labels, following the paper's convention (Sec. IV-B).
NORMAL = 1
ABNORMAL = 0


class AnomalyKind(enum.Enum):
    """Ground-truth anomaly categories the paper targets."""

    NONE = "none"
    SPEEDING = "speeding"
    SLOWING = "slowing"
    SUDDEN_ACCELERATION = "sudden_acceleration"


@dataclass(frozen=True)
class TrajectoryPoint:
    """One GPS fix (one row of the trajectory half of Table I)."""

    object_id: int
    lon: float
    lat: float
    gps_time: float  # seconds since dataset epoch
    ac_mileage_km: float = 0.0

    def __post_init__(self) -> None:
        if self.gps_time < 0:
            raise ValueError(f"gps_time must be non-negative: {self.gps_time}")


@dataclass
class Trip:
    """One trip (the trip half of Table I) and its trajectory."""

    object_id: int
    car_id: int
    start_time: float  # seconds since dataset epoch
    stop_time: float
    start_lon: float = 0.0
    start_lat: float = 0.0
    stop_lon: float = 0.0
    stop_lat: float = 0.0
    mileage_km: float = 0.0
    fuel_l: float = 0.0
    trajectory: List[TrajectoryPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.stop_time < self.start_time:
            raise ValueError(
                f"trip {self.object_id}: stop_time {self.stop_time} before "
                f"start_time {self.start_time}"
            )

    @property
    def period_s(self) -> float:
        """Trip duration (the ``Period`` column of Table I)."""
        return self.stop_time - self.start_time


@dataclass(frozen=True)
class TelemetryRecord:
    """One preprocessed feature row (Table II).

    Attributes
    ----------
    car_id, road_id:
        Identity and map-matched road context.
    accel_ms2:
        Instantaneous acceleration, m/s^2.
    speed_kmh:
        Instantaneous speed, km/h (Eq. 4).
    hour:
        Hour of day, 0-23.
    day:
        Day of month, 1-31 (July 2016 in the paper).
    road_type:
        Map-matched OSM class.
    road_mean_speed_kmh:
        The road's normal speed ``v_r_bar``.
    label:
        Offline sigma-cutoff class: 1 normal, 0 abnormal.  ``None`` for
        unlabelled (online) records.
    anomaly_kind:
        Ground-truth anomaly category (synthetic data only; the paper's
        pipeline does not observe this).
    timestamp:
        Seconds since dataset epoch; orders records within a trip.
    trip_id:
        Identifier of the generating trip (synthetic provenance; used
        for leakage-free per-trip splits, not by the detectors).
    """

    car_id: int
    road_id: int
    accel_ms2: float
    speed_kmh: float
    hour: int
    day: int
    road_type: RoadType
    road_mean_speed_kmh: float
    label: Optional[int] = None
    anomaly_kind: AnomalyKind = AnomalyKind.NONE
    timestamp: float = 0.0
    trip_id: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.hour <= 23:
            raise ValueError(f"hour out of range: {self.hour}")
        if not 1 <= self.day <= 31:
            raise ValueError(f"day out of range: {self.day}")
        if self.speed_kmh < 0:
            raise ValueError(f"speed must be non-negative: {self.speed_kmh}")
        if self.label is not None and self.label not in (NORMAL, ABNORMAL):
            raise ValueError(f"label must be 0/1/None: {self.label}")

    @property
    def is_weekend(self) -> bool:
        """July 2016: the 1st was a Friday, so days 2,3,9,10,... are
        weekend days."""
        day_of_week = (self.day + 3) % 7  # 0=Monday ... 6=Sunday
        return day_of_week >= 5

    def with_label(self, label: int) -> "TelemetryRecord":
        """A copy of this record with ``label`` set."""
        return TelemetryRecord(
            car_id=self.car_id,
            road_id=self.road_id,
            accel_ms2=self.accel_ms2,
            speed_kmh=self.speed_kmh,
            hour=self.hour,
            day=self.day,
            road_type=self.road_type,
            road_mean_speed_kmh=self.road_mean_speed_kmh,
            label=label,
            anomaly_kind=self.anomaly_kind,
            timestamp=self.timestamp,
            trip_id=self.trip_id,
        )
