"""Dataset statistics (the paper's Table III).

Table III reports, per region/road-type after filtering: number of
cars, number of trips, mean speed, and number of trajectory records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dataset.schema import TelemetryRecord
from repro.geo.roadnet import RoadType


@dataclass(frozen=True)
class RegionStats:
    """One Table III row."""

    name: str
    n_cars: int
    n_trips: int
    mean_speed_kmh: float
    n_trajectories: int


@dataclass
class DatasetStatistics:
    """Computed Table III: an overall row plus one row per road type."""

    overall: RegionStats
    per_road_type: Dict[RoadType, RegionStats]

    def rows(self) -> List[RegionStats]:
        ordered = [self.overall]
        for road_type in RoadType:
            if road_type in self.per_road_type:
                ordered.append(self.per_road_type[road_type])
        return ordered

    def format_table(self) -> str:
        """Render in the paper's Table III layout."""
        lines = [
            f"{'Region':<16}{'#Cars':>8}{'#Trips':>10}"
            f"{'MeanSpeed':>11}{'#Trajectories':>15}"
        ]
        for row in self.rows():
            lines.append(
                f"{row.name:<16}{row.n_cars:>8}{row.n_trips:>10}"
                f"{row.mean_speed_kmh:>11.1f}{row.n_trajectories:>15}"
            )
        return "\n".join(lines)


def _trip_count(records: Sequence[TelemetryRecord]) -> int:
    """Count distinct generating trips via the records' ``trip_id``."""
    return len({r.trip_id for r in records})


def _region(name: str, records: Sequence[TelemetryRecord]) -> RegionStats:
    speeds = np.array([r.speed_kmh for r in records]) if records else np.array([0.0])
    return RegionStats(
        name=name,
        n_cars=len({r.car_id for r in records}),
        n_trips=_trip_count(records),
        mean_speed_kmh=float(speeds.mean()) if len(records) else 0.0,
        n_trajectories=len(records),
    )


def compute_statistics(
    records: Sequence[TelemetryRecord],
    region_name: str = "Shenzhen",
    road_types: Optional[Sequence[RoadType]] = None,
) -> DatasetStatistics:
    """Compute Table III over ``records``.

    ``road_types`` defaults to every type present in the data.
    """
    overall = _region(region_name, records)
    present = road_types or sorted(
        {r.road_type for r in records}, key=lambda rt: rt.value
    )
    per_type = {}
    for road_type in present:
        subset = [r for r in records if r.road_type is road_type]
        per_type[road_type] = _region(
            road_type.value.replace("_", " ").title(), subset
        )
    return DatasetStatistics(overall=overall, per_road_type=per_type)
