"""Per-road-type speed profiles with spatio-temporal modulation.

The paper's Fig. 2 shows that the speed profile of a road type varies
with the hour of the day (rush hours vs. off-peak), the day of the week
(weekday vs. weekend), and the road type (motorway vs. motorway link).
This module encodes those Gaussian-like profiles.  Base means follow
the paper's Table III (motorway 160 km/h, motorway link 115 km/h after
filtering); modulation shapes follow Fig. 2: weekday double-dip at the
7-9 h and 17-19 h rush hours, a flatter weekend curve, and a night-time
free-flow plateau.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.geo.roadnet import FREE_FLOW_KMH, RoadType

#: Relative speed standard deviation (sigma / mean) per road type.
RELATIVE_SIGMA: Dict[RoadType, float] = {
    RoadType.MOTORWAY: 0.12,
    RoadType.MOTORWAY_LINK: 0.16,
    RoadType.TRUNK: 0.16,
    RoadType.TRUNK_LINK: 0.18,
    RoadType.PRIMARY: 0.18,
    RoadType.PRIMARY_LINK: 0.20,
    RoadType.SECONDARY: 0.20,
    RoadType.SECONDARY_LINK: 0.22,
    RoadType.TERTIARY: 0.22,
    RoadType.RESIDENTIAL: 0.25,
}

#: Depth of the weekday rush-hour dip, as a fraction of the base mean.
WEEKDAY_RUSH_DIP = 0.30
#: Depth of the weekend midday dip (weekends peak later and shallower).
WEEKEND_MIDDAY_DIP = 0.15
#: Night-time speed uplift (free flow).
NIGHT_UPLIFT = 0.05


def _gaussian_bump(hour: float, center: float, width: float) -> float:
    return math.exp(-0.5 * ((hour - center) / width) ** 2)


@dataclass(frozen=True)
class SpeedProfile:
    """The normal-speed distribution of one road type at one time."""

    road_type: RoadType
    hour: int
    weekend: bool
    mean_kmh: float
    sigma_kmh: float

    def zscore(self, speed_kmh: float) -> float:
        return (speed_kmh - self.mean_kmh) / self.sigma_kmh


class SpeedProfileLibrary:
    """Profiles for every (road type, hour, weekend) combination.

    The library answers two questions:

    - what is the *normal* speed distribution here and now (used by the
      generator to synthesise normal traffic and by the sigma-cutoff
      labeller as ground truth), and
    - how far a given speed deviates from normal (z-score).
    """

    def __init__(self, base_means_kmh: Dict[RoadType, float] = None) -> None:
        self._base_means = dict(FREE_FLOW_KMH)
        if base_means_kmh:
            self._base_means.update(base_means_kmh)

    def modulation(self, hour: int, weekend: bool) -> float:
        """Multiplicative factor on the base mean at (hour, weekend).

        Weekdays dip at the 8 h and 18 h rush hours; weekends dip
        mildly around 14 h; nights (0-5 h) run slightly above base.
        """
        if not 0 <= hour <= 23:
            raise ValueError(f"hour out of range: {hour}")
        factor = 1.0
        if weekend:
            factor -= WEEKEND_MIDDAY_DIP * _gaussian_bump(hour, 14.0, 3.0)
        else:
            factor -= WEEKDAY_RUSH_DIP * _gaussian_bump(hour, 8.0, 1.5)
            factor -= WEEKDAY_RUSH_DIP * _gaussian_bump(hour, 18.0, 1.5)
        if hour <= 5:
            factor += NIGHT_UPLIFT
        return factor

    def profile(
        self, road_type: RoadType, hour: int, weekend: bool
    ) -> SpeedProfile:
        base = self._base_means[road_type]
        mean = base * self.modulation(hour, weekend)
        sigma = base * RELATIVE_SIGMA[road_type]
        return SpeedProfile(
            road_type=road_type,
            hour=hour,
            weekend=weekend,
            mean_kmh=mean,
            sigma_kmh=sigma,
        )

    def base_mean(self, road_type: RoadType) -> float:
        return self._base_means[road_type]

    def hourly_means(self, road_type: RoadType, weekend: bool) -> list:
        """The 24-value hourly mean-speed series (one Fig. 2 curve)."""
        return [
            self.profile(road_type, hour, weekend).mean_kmh
            for hour in range(24)
        ]
