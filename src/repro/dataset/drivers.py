"""Per-driver behaviour model.

The key property the synthetic dataset must reproduce for the CAD3
collaboration mechanism to matter is **anomaly persistence**: a driver
who is speeding on the motorway tends to still be driving abnormally
when they take the motorway link.  The paper exploits exactly this by
forwarding prediction summaries between adjacent RSUs (driver-awareness
at the mesoscopic level).

We model each driver as a two-state process:

- ``CALM``: the driver tracks the road's normal speed profile with a
  small personal bias.
- ``ANOMALOUS``: the driver is in an anomaly *episode* of a specific
  kind (speeding / slowing / sudden acceleration).  Episodes start with
  a per-driver probability at trip start or mid-trip, and persist
  across road-segment handovers with high probability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dataset.schema import AnomalyKind


class DriverState(enum.Enum):
    CALM = "calm"
    ANOMALOUS = "anomalous"


@dataclass(frozen=True)
class DriverProfile:
    """Static attributes of one driver.

    Attributes
    ----------
    car_id:
        Vehicle identifier.
    aggressiveness:
        In [0, 1]; scales both the probability of entering an anomaly
        episode and its magnitude.
    speed_bias_kmh:
        Personal persistent offset from the road-normal speed (some
        drivers habitually run a little fast or slow — within normal).
    """

    car_id: int
    aggressiveness: float
    speed_bias_kmh: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.aggressiveness <= 1.0:
            raise ValueError(
                f"aggressiveness must be in [0, 1]: {self.aggressiveness}"
            )


class DriverModel:
    """Stateful behaviour process for one driver on one trip.

    Parameters
    ----------
    profile:
        The driver's static profile.
    rng:
        Random stream (owned by the caller for determinism).
    episode_start_prob:
        Baseline probability of starting a trip inside an anomaly
        episode, scaled by aggressiveness.
    episode_continue_prob:
        Probability an episode persists across a segment handover —
        this is the persistence that makes inter-RSU collaboration
        informative.
    mid_trip_start_prob:
        Per-segment probability of an episode starting mid-trip.
    """

    #: Anomaly magnitude, in units of the road-type sigma.  The paper
    #: labels abnormality outside [mu - sigma, mu + sigma]; episodes
    #: push 1.2-3 sigma out so most (not all) episode points are
    #: genuinely abnormal — keeping class overlap realistic.
    EPISODE_SIGMA_LOW = 1.2
    EPISODE_SIGMA_HIGH = 3.0

    def __init__(
        self,
        profile: DriverProfile,
        rng: np.random.Generator,
        episode_start_prob: float = 0.30,
        episode_continue_prob: float = 0.85,
        mid_trip_start_prob: float = 0.10,
    ) -> None:
        self.profile = profile
        self._rng = rng
        self.episode_start_prob = episode_start_prob
        self.episode_continue_prob = episode_continue_prob
        self.mid_trip_start_prob = mid_trip_start_prob
        self.state = DriverState.CALM
        self.anomaly_kind = AnomalyKind.NONE
        self._episode_magnitude = 0.0

    # ------------------------------------------------------------------
    def begin_trip(self) -> None:
        """Reset state and maybe start the trip inside an episode."""
        self.state = DriverState.CALM
        self.anomaly_kind = AnomalyKind.NONE
        start_prob = self.episode_start_prob * (
            0.5 + self.profile.aggressiveness
        )
        if self._rng.random() < min(start_prob, 0.95):
            self._start_episode()

    def on_segment_change(self) -> None:
        """Advance the episode state machine at a handover."""
        if self.state is DriverState.ANOMALOUS:
            if self._rng.random() >= self.episode_continue_prob:
                self._end_episode()
        else:
            start_prob = self.mid_trip_start_prob * (
                0.5 + self.profile.aggressiveness
            )
            if self._rng.random() < start_prob:
                self._start_episode()

    def _start_episode(self) -> None:
        self.state = DriverState.ANOMALOUS
        kinds = [
            AnomalyKind.SPEEDING,
            AnomalyKind.SLOWING,
            AnomalyKind.SUDDEN_ACCELERATION,
        ]
        # Speeding and slowing dominate; sudden acceleration is rarer.
        weights = [0.45, 0.40, 0.15]
        self.anomaly_kind = kinds[self._rng.choice(3, p=weights)]
        low, high = self.EPISODE_SIGMA_LOW, self.EPISODE_SIGMA_HIGH
        self._episode_magnitude = float(
            low
            + (high - low)
            * (0.3 + 0.7 * self.profile.aggressiveness)
            * self._rng.random()
        )

    def _end_episode(self) -> None:
        self.state = DriverState.CALM
        self.anomaly_kind = AnomalyKind.NONE
        self._episode_magnitude = 0.0

    # ------------------------------------------------------------------
    def sample_speed(self, mean_kmh: float, sigma_kmh: float) -> float:
        """Instantaneous speed under the current behaviour state."""
        noise = float(self._rng.normal(0.0, 0.5 * sigma_kmh))
        base = mean_kmh + self.profile.speed_bias_kmh + noise
        if self.state is DriverState.CALM:
            return max(0.0, base)
        offset = self._episode_magnitude * sigma_kmh
        if self.anomaly_kind is AnomalyKind.SPEEDING:
            return max(0.0, base + offset)
        if self.anomaly_kind is AnomalyKind.SLOWING:
            return max(0.0, base - offset)
        # Sudden acceleration: speed itself is near normal but jittery.
        return max(0.0, base + float(self._rng.normal(0.0, 0.4 * sigma_kmh)))

    def sample_accel(self, sigma_kmh: float, dt_s: float) -> float:
        """Instantaneous acceleration in m/s^2.

        Calm driving has small accelerations; a sudden-acceleration
        episode produces bursts well outside the normal band.
        """
        calm_sigma = 0.6  # m/s^2, typical comfortable driving
        if (
            self.state is DriverState.ANOMALOUS
            and self.anomaly_kind is AnomalyKind.SUDDEN_ACCELERATION
        ):
            magnitude = 2.5 + 3.0 * self._episode_magnitude
            sign = 1.0 if self._rng.random() < 0.7 else -1.0
            return sign * magnitude + float(self._rng.normal(0.0, 0.5))
        return float(self._rng.normal(0.0, calm_sigma))

    def sample_batch(
        self, mean_kmh: float, sigma_kmh: float, n: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``n`` (speed, accel) pairs in one vectorized draw.

        Consumes the RNG stream exactly as ``n`` interleaved
        ``sample_speed`` / ``sample_accel`` calls would: both scalar
        paths draw one standard normal each (``normal(0, s)`` is
        ``s * standard_normal()`` on the same ziggurat stream), so one
        ``standard_normal(2n)`` block reproduces the identical value
        sequence — speeds from the even lanes, accelerations from the
        odd.  Only valid while the behaviour state is fixed (no segment
        change mid-batch) and the episode kind is not
        ``SUDDEN_ACCELERATION``, whose per-sample uniform (the burst
        sign) interleaves with the normals and makes the scalar path
        the only faithful one — callers must fall back for it.
        """
        if self.anomaly_kind is AnomalyKind.SUDDEN_ACCELERATION:
            raise ValueError(
                "sample_batch cannot reproduce the SUDDEN_ACCELERATION "
                "draw order; use the scalar sample_speed/sample_accel"
            )
        z = self._rng.standard_normal(2 * n)
        base = (mean_kmh + self.profile.speed_bias_kmh) + (
            0.5 * sigma_kmh
        ) * z[0::2]
        if self.state is DriverState.CALM:
            speeds = np.maximum(0.0, base)
        elif self.anomaly_kind is AnomalyKind.SPEEDING:
            speeds = np.maximum(0.0, base + self._episode_magnitude * sigma_kmh)
        else:  # SLOWING
            speeds = np.maximum(0.0, base - self._episode_magnitude * sigma_kmh)
        accels = 0.6 * z[1::2]  # calm_sigma, as in sample_accel
        return speeds, accels

    @property
    def in_episode(self) -> bool:
        return self.state is DriverState.ANOMALOUS
