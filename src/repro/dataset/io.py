"""CSV round-tripping for dataset records.

The paper's pipeline reads the preprocessed dataset from disk (Kafka
producers replay it); these helpers give the same capability with
stdlib ``csv`` so datasets can be generated once and replayed by many
experiments.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Union

from repro.dataset.schema import AnomalyKind, TelemetryRecord, TrajectoryPoint, Trip
from repro.geo.roadnet import RoadType

PathLike = Union[str, Path]

TELEMETRY_FIELDS = [
    "car_id",
    "road_id",
    "accel_ms2",
    "speed_kmh",
    "hour",
    "day",
    "road_type",
    "road_mean_speed_kmh",
    "label",
    "anomaly_kind",
    "timestamp",
    "trip_id",
]


def write_telemetry_csv(path: PathLike, records: List[TelemetryRecord]) -> None:
    """Write Table II rows to CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=TELEMETRY_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow(
                {
                    "car_id": record.car_id,
                    "road_id": record.road_id,
                    "accel_ms2": repr(record.accel_ms2),
                    "speed_kmh": repr(record.speed_kmh),
                    "hour": record.hour,
                    "day": record.day,
                    "road_type": record.road_type.value,
                    "road_mean_speed_kmh": repr(record.road_mean_speed_kmh),
                    "label": "" if record.label is None else record.label,
                    "anomaly_kind": record.anomaly_kind.value,
                    "timestamp": repr(record.timestamp),
                    "trip_id": record.trip_id,
                }
            )


def read_telemetry_csv(path: PathLike) -> List[TelemetryRecord]:
    """Read Table II rows back from CSV."""
    records = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                TelemetryRecord(
                    car_id=int(row["car_id"]),
                    road_id=int(row["road_id"]),
                    accel_ms2=float(row["accel_ms2"]),
                    speed_kmh=float(row["speed_kmh"]),
                    hour=int(row["hour"]),
                    day=int(row["day"]),
                    road_type=RoadType(row["road_type"]),
                    road_mean_speed_kmh=float(row["road_mean_speed_kmh"]),
                    label=int(row["label"]) if row["label"] != "" else None,
                    anomaly_kind=AnomalyKind(row["anomaly_kind"]),
                    timestamp=float(row["timestamp"]),
                    trip_id=int(row.get("trip_id", 0)),
                )
            )
    return records


TRIP_FIELDS = [
    "object_id",
    "car_id",
    "start_time",
    "stop_time",
    "start_lon",
    "start_lat",
    "stop_lon",
    "stop_lat",
    "mileage_km",
    "fuel_l",
]

TRAJECTORY_FIELDS = ["object_id", "lon", "lat", "gps_time", "ac_mileage_km"]


def write_trips_csv(
    trips_path: PathLike,
    trajectories_path: PathLike,
    trips: List[Trip],
) -> None:
    """Write trips and their trajectories as the paper's two tables."""
    with open(trips_path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=TRIP_FIELDS)
        writer.writeheader()
        for trip in trips:
            writer.writerow(
                {
                    "object_id": trip.object_id,
                    "car_id": trip.car_id,
                    "start_time": repr(trip.start_time),
                    "stop_time": repr(trip.stop_time),
                    "start_lon": repr(trip.start_lon),
                    "start_lat": repr(trip.start_lat),
                    "stop_lon": repr(trip.stop_lon),
                    "stop_lat": repr(trip.stop_lat),
                    "mileage_km": repr(trip.mileage_km),
                    "fuel_l": repr(trip.fuel_l),
                }
            )
    with open(trajectories_path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=TRAJECTORY_FIELDS)
        writer.writeheader()
        for trip in trips:
            for point in trip.trajectory:
                writer.writerow(
                    {
                        "object_id": point.object_id,
                        "lon": repr(point.lon),
                        "lat": repr(point.lat),
                        "gps_time": repr(point.gps_time),
                        "ac_mileage_km": repr(point.ac_mileage_km),
                    }
                )


def read_trips_csv(
    trips_path: PathLike, trajectories_path: Optional[PathLike] = None
) -> List[Trip]:
    """Read trips (and optionally their trajectories) from CSV."""
    trips = []
    with open(trips_path, newline="") as handle:
        for row in csv.DictReader(handle):
            trips.append(
                Trip(
                    object_id=int(row["object_id"]),
                    car_id=int(row["car_id"]),
                    start_time=float(row["start_time"]),
                    stop_time=float(row["stop_time"]),
                    start_lon=float(row["start_lon"]),
                    start_lat=float(row["start_lat"]),
                    stop_lon=float(row["stop_lon"]),
                    stop_lat=float(row["stop_lat"]),
                    mileage_km=float(row["mileage_km"]),
                    fuel_l=float(row["fuel_l"]),
                )
            )
    if trajectories_path is not None:
        by_id = {trip.object_id: trip for trip in trips}
        with open(trajectories_path, newline="") as handle:
            for row in csv.DictReader(handle):
                object_id = int(row["object_id"])
                if object_id not in by_id:
                    continue
                by_id[object_id].trajectory.append(
                    TrajectoryPoint(
                        object_id=object_id,
                        lon=float(row["lon"]),
                        lat=float(row["lat"]),
                        gps_time=float(row["gps_time"]),
                        ac_mileage_km=float(row["ac_mileage_km"]),
                    )
                )
    return trips
