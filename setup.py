"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` and no ``[build-system]`` table lets ``pip install -e .``
use the legacy editable path, which needs neither network nor wheel.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
